"""The distributed-mode MRAppMaster (stock Hadoop and D+ share this body).

Lifecycle (paper Figure 1 steps 3-6): init (download splits/conf/jar), ask
the RM for one container per map via the heartbeat loop, match granted
containers to tasks by locality (as the real MRAppMaster does), launch task
JVMs through the NMs, request the reduce container at slow-start, wait for
everything, commit.

Fault tolerance mirrors Hadoop's: a task attempt killed by a node failure
is retried in a fresh container (up to ``max_task_attempts``); a failed
reduce attempt is relaunched and re-fetches the already-completed map
outputs; a reducer's shuffle *fetch failure* (the completed map's output
died with its node) re-executes that map and hands the fresh output to the
blocked fetcher; a second AM attempt replays the completed-map history
journaled on the Application (work-preserving recovery); and nodes that
fail ``max_failures_per_node`` attempts are blacklisted for the rest of
the job.

Whether allocation takes >= 2 heartbeats (stock CapacityScheduler) or
returns in the same heartbeat (D+), and whether grants spread across nodes,
is entirely the *scheduler's* doing — this AM is identical in both modes,
exactly like MRapid's backward-compatible implementation.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator, Optional

from ..hdfs.splits import compute_splits
from ..simulation.errors import Interrupt
from ..simulation.resources import Store
from ..yarn.records import Container, ContainerRequest
from .spec import JobResult, MapOutput, SimJobSpec, TaskRecord
from .tasks import ShuffleService, sim_map_task, sim_reduce_task

if TYPE_CHECKING:  # pragma: no cover
    from ..simcluster import SimCluster
    from ..yarn.resourcemanager import AMContext

REDUCE = -1  # task index used for the single reduce


class JobFailed(Exception):
    """A task ran out of attempts (or the job is otherwise unrecoverable)."""


class OutputBus:
    """Routes map outputs to the *current* reduce attempt's store.

    A reduce retry gets a fresh store preloaded with every already-completed
    map output; maps that finish later put into the new store transparently.
    Outputs are de-duplicated by base task id so a speculative duplicate
    attempt finishing second never double-feeds the reducer.
    """

    def __init__(self, env) -> None:
        self.env = env
        self.store: Store = Store(env)
        self._seen: set[str] = set()

    @staticmethod
    def _base(task_id: str) -> str:
        return task_id.split(".")[0]

    def put(self, item: MapOutput) -> None:
        base = self._base(item.task_id)
        if base in self._seen:
            return
        self._seen.add(base)
        self.store.put(item)

    def rebuild(self, preload: list[MapOutput]) -> Store:
        self.store = Store(self.env)
        self._seen = set()
        for item in preload:
            self.put(item)
        return self.store


class DistributedAM:
    """One job's ApplicationMaster running in its allocated container."""

    def __init__(self, cluster: "SimCluster", spec: SimJobSpec, result: JobResult,
                 request_locality: bool = True,
                 commit_rpc_s: Optional[float] = None,
                 reduce_locality: bool = False) -> None:
        self.cluster = cluster
        self.spec = spec
        self.result = result
        self.request_locality = request_locality
        #: LARTS-style extension: prefer placing the reduce where the most
        #: map output already lives (paper related work [14]).
        self.reduce_locality = reduce_locality
        # Stock Hadoop routes per-task status/commit through RM-side RPC
        # paths; MRapid's framework passes 0 here when it short-circuits them.
        self.commit_rpc_s = (cluster.conf.task_commit_rpc_s
                             if commit_rpc_s is None else commit_rpc_s)
        self._children: list = []

    # -- entry point ----------------------------------------------------------
    def run(self, ctx: "AMContext") -> Generator:
        env = self.cluster.env
        conf = self.cluster.conf
        self.result.am_start_time = env.now
        # A restarted AM attempt reuses this result object: clear the
        # previous attempt's demise before trying again.
        self.result.killed = False
        self.result.failed = False
        self._children = []
        try:
            # AM init: parse conf, download splits / jar from HDFS.
            t_init = env.now
            yield env.timeout(conf.am_init_s)
            if env.tracer is not None:
                env.tracer.complete("am-init", "init", ctx.node_id,
                                    f"am-{ctx.app.app_id}", t_init)

            splits = compute_splits(self.cluster.namenode, self.spec.input_paths)
            n_maps = len(splits)
            bus = OutputBus(env)

            map_records = [TaskRecord(f"m{idx:03d}", "map") for idx in range(n_maps)]
            reduce_record = TaskRecord("r000", "reduce")
            self.result.maps = map_records
            self.result.reduces = [reduce_record]

            container_resource = conf.container_resource()
            blacklisted: set[str] = set()
            node_task_failures: dict[str, int] = {}

            rm_nodes = self.cluster.rm.nodes

            def node_alive(node_id: str) -> bool:
                state = rm_nodes.get(node_id)
                return state is not None and state.alive

            shuffle = ShuffleService(env, node_alive)

            def map_ask(idx: int) -> ContainerRequest:
                prefs = splits[idx].hosts if self.request_locality else ()
                return ContainerRequest(container_resource, tuple(prefs), tag=idx,
                                        blacklist=tuple(sorted(blacklisted)))

            def reduce_ask() -> ContainerRequest:
                prefs: tuple[str, ...] = ()
                if self.reduce_locality:
                    # LARTS: rank nodes by completed map-output bytes.
                    by_node: dict[str, float] = {}
                    for r in map_records:
                        if r.finish_time > 0:
                            by_node[r.node_id] = by_node.get(r.node_id, 0.0) + r.output_mb
                    if by_node:
                        prefs = tuple(sorted(by_node, key=lambda n: -by_node[n])[:3])
                return ContainerRequest(container_resource, prefs, tag="reduce",
                                        blacklist=tuple(sorted(blacklisted)))

            attempts: dict[int, int] = {idx: 0 for idx in range(n_maps)}
            attempts[REDUCE] = 0
            launches: dict[int, int] = {idx: 0 for idx in range(n_maps)}
            running: dict = {}          # proc -> task index (REDUCE for reduce)
            proc_records: dict = {}     # proc -> its attempt's TaskRecord
            proc_nodes: dict = {}       # proc -> node its container ran on
            completed: set[int] = set()
            speculating: set[int] = set()  # tasks with a duplicate in flight
            reduce_requested = False
            reduce_pending = False      # ask sent, container not yet granted
            reduce_done = False
            reduce_threshold = max(1, math.ceil(conf.slowstart_completed_maps * n_maps))

            # Work-preserving recovery: a second AM attempt replays the maps
            # the previous attempt journaled, provided their outputs are
            # still reachable (the hosting node is alive); the rest re-run.
            if conf.am_work_preserving_recovery:
                for idx, old in sorted(ctx.recovered_maps().items()):
                    if idx >= n_maps or old.finish_time <= 0 or not node_alive(old.node_id):
                        continue
                    completed.add(idx)
                    map_records[idx] = old
                    launches[idx] = 1
                    bus.put(MapOutput(old.task_id, old.node_id, old.output_mb,
                                      old.in_memory_output))
                    self.cluster.log.mark(env.now, "map_recovered",
                                          task=old.task_id, node=old.node_id)
                self.result.maps = map_records

            unassigned = [idx for idx in range(n_maps) if idx not in completed]
            asks = [map_ask(idx) for idx in unassigned]
            ask_times: dict[int, float] = {idx: env.now for idx in unassigned}

            def requeue_grant(container: Container) -> None:
                """Return an unusable grant and restore the ask it consumed.

                D+ grants carry the task tag, so the exact ask is re-issued.
                Stock grants are untagged, but stock asks are fungible at
                match time (:meth:`_pick_task` ignores which ask a container
                answered), so re-asking anything outstanding keeps the
                ask/grant ledger balanced.
                """
                ctx.release(container)
                tag = getattr(container, "tag", None)
                if tag == "reduce":
                    asks.append(reduce_ask())
                elif isinstance(tag, int):
                    asks.append(map_ask(tag))
                elif unassigned:
                    asks.append(map_ask(unassigned[0]))
                elif reduce_pending:
                    asks.append(reduce_ask())

            def relaunch_map(idx: int, cause: str, task_id: str, node: str) -> None:
                """Re-execute a map whose completed output became unreachable."""
                completed.discard(idx)
                ctx.app.recovery_maps.pop(idx, None)
                self.cluster.log.mark(env.now, cause, task=task_id, node=node)
                if idx not in unassigned:
                    unassigned.append(idx)
                    ask_times[idx] = env.now
                    asks.append(map_ask(idx))

            # -- heartbeat loop --------------------------------------------------
            while True:
                grants = yield from ctx.allocate(asks)
                asks = []
                for container in grants:
                    if (not node_alive(container.node_id)
                            or container.node_id in blacklisted):
                        # Granted just before the node died (or was
                        # blacklisted after the ask went out): give the
                        # container back and restore the ask.
                        requeue_grant(container)
                        continue
                    task_idx = self._pick_task(container, splits, unassigned)
                    if task_idx is not None:
                        unassigned.remove(task_idx)
                        record = self._fresh_map_record(task_idx, launches[task_idx])
                        launches[task_idx] += 1
                        if task_idx not in completed:
                            map_records[task_idx] = record
                            self.result.maps = map_records
                        record.phases.wait = env.now - ask_times[task_idx]
                        record.phases.launch = conf.container_launch_s
                        if env.tracer is not None and record.phases.wait > 0:
                            from ..observe.tracer import CLUSTER
                            env.tracer.complete("grant-wait", "wait", CLUSTER,
                                                record.task_id,
                                                ask_times[task_idx],
                                                placed_on=container.node_id)
                        body = sim_map_task(self.cluster, self.spec.profile,
                                            splits[task_idx], container.node_id,
                                            record, bus, conf.task_setup_s,
                                            commit_rpc_s=self.commit_rpc_s)
                        proc = ctx.start_container(container, body,
                                                   name=f"{self.spec.name}-{record.task_id}")
                        # Pre-defuse: attempt failures are harvested by the
                        # heartbeat loop, not by waiting on the process.
                        proc.defuse()
                        running[proc] = task_idx
                        proc_records[proc] = record
                        proc_nodes[proc] = container.node_id
                        self._children.append(proc)
                    elif reduce_pending:
                        reduce_pending = False
                        record = self._fresh_reduce_record(attempts[REDUCE])
                        self.result.reduces = [record]
                        record.phases.launch = conf.container_launch_s
                        body = sim_reduce_task(
                            self.cluster, self.spec.profile, n_maps,
                            container.node_id, record, bus.store,
                            conf.task_setup_s,
                            output_path=f"/out/{self.result.app_id}",
                            commit_rpc_s=self.commit_rpc_s,
                            shuffle=shuffle,
                        )
                        proc = ctx.start_container(
                            container, body, name=f"{self.spec.name}-reduce")
                        proc.defuse()
                        running[proc] = REDUCE
                        proc_records[proc] = record
                        proc_nodes[proc] = container.node_id
                        self._children.append(proc)
                    else:
                        ctx.release(container)  # surplus grant

                # Shuffle fetch failures: a reducer could not pull a completed
                # map's output (it died with its node) and is blocked on a
                # replacement — re-execute those maps, like the real AM does
                # after TOO_MANY_FETCH_FAILURES.
                for lost in shuffle.drain():
                    relaunch_map(int(lost.task_id.split(".")[0][1:]),
                                 "fetch_failure", lost.task_id, lost.node_id)

                # Harvest finished attempts; retry failures; settle duplicates.
                for proc in [p for p in list(running) if not p.is_alive]:
                    idx = running.pop(proc)
                    record = proc_records.pop(proc, None)
                    fail_node = proc_nodes.pop(proc, None)
                    if proc.ok:
                        if idx == REDUCE:
                            reduce_done = True
                            continue
                        if idx not in completed:
                            if record is not None and not node_alive(record.node_id):
                                # The attempt finished, but its machine died
                                # before this heartbeat heard: the output is
                                # already gone. Leave the task incomplete and
                                # re-run it (the drain above may have queued
                                # the relaunch already).
                                if idx not in unassigned:
                                    unassigned.append(idx)
                                    ask_times[idx] = env.now
                                    asks.append(map_ask(idx))
                                continue
                            completed.add(idx)
                            if record is not None:
                                map_records[idx] = record  # winning attempt
                                # Journal for work-preserving AM recovery and
                                # wake any fetcher blocked on this map's output.
                                ctx.record_completed_map(idx, record)
                                shuffle.resolve(record.task_id, MapOutput(
                                    record.task_id, record.node_id,
                                    record.output_mb, record.in_memory_output))
                            # A still-running duplicate lost the race: kill it.
                            for other, other_idx in list(running.items()):
                                if other_idx == idx and other.is_alive:
                                    other.defuse()
                                    other.interrupt("speculative duplicate lost")
                        speculating.discard(idx)
                        if idx in unassigned:
                            unassigned.remove(idx)  # pending dup no longer needed
                        continue
                    if idx != REDUCE and idx in completed:
                        continue  # the losing duplicate of a finished task
                    # Node blacklisting (mapreduce.job.maxtaskfailures.per.tracker):
                    # a machine that keeps failing attempts — gray disk, flaky
                    # JVMs — is taken out of this job's rotation, as long as
                    # at least one other node remains usable.
                    if conf.node_blacklist_enabled and fail_node is not None:
                        node_task_failures[fail_node] = node_task_failures.get(fail_node, 0) + 1
                        if (node_task_failures[fail_node] >= conf.max_failures_per_node
                                and fail_node not in blacklisted
                                and len(blacklisted) < len(rm_nodes) - 1):
                            blacklisted.add(fail_node)
                            self.cluster.log.mark(env.now, "node_blacklisted",
                                                  node=fail_node,
                                                  failures=node_task_failures[fail_node])
                    attempts[idx] += 1
                    if attempts[idx] >= conf.max_task_attempts:
                        raise JobFailed(
                            f"{self.spec.name}: task {idx} failed "
                            f"{attempts[idx]} attempts ({proc.value!r})")
                    if idx == REDUCE:
                        reduce_pending = True
                        # Preload the retry with outputs that are still
                        # reachable; maps whose output died with their node
                        # are re-executed instead of fed to a doomed fetch.
                        preload = []
                        for r_idx, r in enumerate(map_records):
                            if r.finish_time <= 0:
                                continue
                            if not node_alive(r.node_id):
                                relaunch_map(r_idx, "map_output_lost",
                                             r.task_id, r.node_id)
                                continue
                            preload.append(MapOutput(r.task_id, r.node_id,
                                                     r.output_mb,
                                                     r.in_memory_output))
                        bus.rebuild(preload)
                        asks.append(reduce_ask())
                    else:
                        speculating.discard(idx)
                        if idx not in unassigned:
                            unassigned.append(idx)
                            ask_times[idx] = env.now
                            asks.append(map_ask(idx))

                # In-job straggler speculation (mapreduce.map.speculative):
                # duplicate attempts for tasks running well past the average.
                if conf.speculative_tasks and len(completed) >= conf.speculative_min_completed:
                    done_times = [map_records[i].elapsed for i in completed]
                    avg_elapsed = sum(done_times) / len(done_times)
                    for proc, idx in list(running.items()):
                        if idx == REDUCE or idx in speculating or idx in completed:
                            continue
                        rec = proc_records.get(proc)
                        if rec is None or rec.start_time <= 0:
                            continue
                        if (env.now - rec.start_time) > conf.speculative_slowness * avg_elapsed:
                            speculating.add(idx)
                            unassigned.append(idx)
                            ask_times[idx] = env.now
                            asks.append(map_ask(idx))

                if not reduce_requested and len(completed) >= reduce_threshold:
                    reduce_requested = True
                    reduce_pending = True
                    asks.append(reduce_ask())

                if len(completed) == n_maps and reduce_done:
                    break
                yield from ctx.wait_heartbeat()

            self.result.num_waves = self._count_waves(map_records)
            self.result.finish_time = env.now
            return self.result
        except BaseException as exc:
            if isinstance(exc, Interrupt):
                self.result.killed = True
            else:
                self.result.failed = True
            for proc in self._children:
                if proc.is_alive:
                    proc.defuse()
                    proc.interrupt("job aborted")
            raise

    # -- helpers ------------------------------------------------------------------
    def _fresh_map_record(self, idx: int, attempt: int) -> TaskRecord:
        suffix = f"m{idx:03d}" if attempt == 0 else f"m{idx:03d}.a{attempt}"
        return TaskRecord(suffix, "map")

    def _fresh_reduce_record(self, attempt: int) -> TaskRecord:
        suffix = "r000" if attempt == 0 else f"r000.a{attempt}"
        return TaskRecord(suffix, "reduce")

    def _pick_task(self, container: Container, splits, unassigned: list[int]) -> Optional[int]:
        """Match a granted container to the best waiting map task.

        Honors the scheduler's explicit assignment (D+ tags grants with the
        task index); otherwise picks by locality like the stock MRAppMaster:
        node-local first, then rack-local, then any.
        """
        if not unassigned:
            return None
        tag = getattr(container, "tag", None)
        if tag is not None and tag in unassigned:
            return tag
        if tag == "reduce":
            return None
        from ..cluster.topology import Locality

        topo = self.cluster.topology
        best_idx = None
        best_level = None
        for idx in unassigned:
            level = topo.locality(container.node_id, splits[idx].hosts)
            if best_level is None or level < best_level:
                best_level = level
                best_idx = idx
                if level == Locality.NODE_LOCAL:
                    break
        return best_idx

    @staticmethod
    def _count_waves(records: list[TaskRecord]) -> int:
        """n^w estimated as ceil(#maps / peak map concurrency)."""
        if not records:
            return 0
        events = []
        for r in records:
            events.append((r.start_time, 1))
            events.append((r.finish_time, -1))
        events.sort()
        peak = cur = 0
        for _, delta in events:
            cur += delta
            peak = max(peak, cur)
        return max(1, math.ceil(len(records) / max(1, peak)))
