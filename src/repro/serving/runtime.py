"""ServingRuntime: wires admission, degradation, and autoscaling into a replay.

This is the only serving component that touches the simulation environment.
The :class:`~repro.serving.admission.AdmissionController` stays pure; the
runtime clocks it, parks admitted jobs on dispatch events, resolves shed
victims, feeds completion samples back to the size estimator, and (when
enabled) runs the :class:`~repro.serving.autoscaler.Autoscaler` against the
live NodeManager fleet.

The replay driver (:func:`repro.trace.replay_load`) drives it per job:

1. ``slo = runtime.resolve(trace_job)`` — fix SLO class and absolute deadline;
2. ``decision = runtime.offer(slo)`` — admission (driver handles
   retry-with-backoff on rejection);
3. ``signal = yield runtime.dispatch_event(slo)`` — waits for a slot;
   resolves ``"dispatch"`` or ``"shed"`` (evicted while pending);
4. submit through the normal strategy path, possibly degraded
   (``runtime.degraded_mode_for(slo)``);
5. ``outcome = runtime.job_finished(slo, service_s)`` (or ``job_aborted``).

With ``admission=False`` (the "static" arm of Figure S1) steps 2–3 are
pass-throughs and only deadline accounting remains, so static runs measure
the same attainment metric through the same code path.
"""

from __future__ import annotations

from collections import deque
from itertools import count
from typing import TYPE_CHECKING, Generator, Optional

from ..config import SLO_LATENCY, ServingConfig
from ..metrics import StreamingRatio
from .admission import AdmissionController, Decision
from .autoscaler import Autoscaler
from .slo import (
    OUTCOME_DEADLINE_MET,
    OUTCOME_DEADLINE_MISSED,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    SizeEstimator,
    SLOJob,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..simcluster import SimCluster
    from ..simulation.events import Event
    from ..trace import TraceJob

#: Values a dispatch event resolves with.
SIGNAL_DISPATCH = "dispatch"
SIGNAL_SHED = "shed"

#: Outcome of a batch job that simply completed (no deadline to meet).
OUTCOME_COMPLETED = "completed"

#: Window size for the autoscaler's *recent* attainment signal; small enough
#: to react within a few tens of completions, large enough not to flap on one
#: miss.
_RECENT_WINDOW = 20
_RECENT_MIN_SAMPLES = 5


class ServingRuntime:
    """Per-replay serving state machine (one instance per ``replay_load``)."""

    def __init__(self, cluster: "SimCluster", serving: ServingConfig) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.serving = serving
        self.controller = AdmissionController(
            serving, SizeEstimator(serving.initial_guess_s, serving.estimator_alpha))
        self._waiters: dict[int, "Event"] = {}
        #: Dispatch tickets: job index -> the monotone sequence number of
        #: its controller dispatch. One ``_pump`` call can free several
        #: jobs at the same simulated instant; their driver processes then
        #: resume in kernel tie-break order, so the ticket — not resume
        #: order — carries the controller's EDF decision downstream (it
        #: becomes the YARN AM queue's ``fifo_key``).
        self._tickets: dict[int, int] = {}
        self._dispatch_seq = count()
        self._static_in_flight = 0
        self.attainment = StreamingRatio()
        self._recent: deque[int] = deque(maxlen=_RECENT_WINDOW)
        self.counts = {
            "latency_jobs": 0, "batch_jobs": 0,
            "admitted": 0, "downgraded": 0, "rejected": 0, "shed": 0,
            "retries": 0, "deadline_met": 0, "deadline_missed": 0,
            "batch_completed": 0,
        }
        self.reject_reasons: dict[str, int] = {}
        self._node_hours: Optional[float] = None
        self.autoscaler: Optional[Autoscaler] = None
        if serving.autoscale:
            self.autoscaler = Autoscaler(
                cluster, serving, self,
                attainment=self.recent_attainment,
                on_capacity_change=self._pump)
        if serving.admission:
            # Watchdog pump: dispatch normally rides on completions and
            # capacity changes, but if every healthy node dies mid-burst the
            # queue must not deadlock waiting for a completion that cannot
            # come. Fixed period, so replays stay deterministic.
            self.env.process(self._watchdog(), name="serving-pump")

    # -- capacity (also the Autoscaler's controller view) ----------------------
    @property
    def pending_count(self) -> int:
        return self.controller.pending_count if self.serving.admission else 0

    @property
    def running_count(self) -> int:
        return (self.controller.running_count if self.serving.admission
                else self._static_in_flight)

    def healthy_nodes(self) -> int:
        return sum(1 for nm in self.cluster.node_managers
                   if not nm.failed and not nm.drained)

    def slots(self) -> int:
        return self.healthy_nodes() * self.serving.slots_per_node

    # -- SLO resolution --------------------------------------------------------
    def resolve(self, job: "TraceJob") -> SLOJob:
        """Fix a trace arrival's SLO class and *absolute* deadline.

        ``job`` needs ``index``/``signature``/``arrival_s``/``slo_class``/
        ``deadline_s`` (:class:`repro.trace.TraceJob` provides them; the
        per-job deadline is relative to arrival, ``None`` meaning the
        config-wide ``latency_deadline_s``).
        """
        slo_class = job.slo_class
        if slo_class == SLO_LATENCY:
            relative = (job.deadline_s if job.deadline_s is not None
                        else self.serving.latency_deadline_s)
            deadline = job.arrival_s + relative
            self.counts["latency_jobs"] += 1
        else:
            deadline = float("inf")
            self.counts["batch_jobs"] += 1
        return SLOJob(index=job.index, name=job.signature, slo_class=slo_class,
                      arrival_s=job.arrival_s, deadline_s=deadline)

    # -- admission -------------------------------------------------------------
    def offer(self, slo: SLOJob) -> Decision:
        """Run one (re-)submission through admission; wire up dispatch."""
        if not self.serving.admission:
            self.counts["admitted"] += 1
            self._static_in_flight += 1
            return Decision(slo, "admitted")
        decision = self.controller.offer(slo, self.env.now, self.slots())
        if decision.admitted:
            self.counts["admitted"] += 1
            if decision.outcome == "downgraded":
                self.counts["downgraded"] += 1
            self._waiters[slo.index] = self.env.event()
            if decision.shed is not None:
                self._resolve_shed(decision.shed)
            self._pump()
        return decision

    def record_retry(self) -> None:
        self.counts["retries"] += 1

    def record_rejection(self, decision: Decision) -> str:
        """A submission gave up (retries exhausted): final outcome."""
        self.counts["rejected"] += 1
        reason = decision.reason or "capacity"
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1
        return OUTCOME_REJECTED

    def retry_delay_s(self, attempt: int) -> float:
        """Deterministic exponential backoff for rejected submissions."""
        return self.serving.retry_backoff_s * (2 ** attempt)

    # -- dispatch --------------------------------------------------------------
    def wait_dispatch(self, slo: SLOJob) -> Generator:
        """Wait for this admitted job's slot (``yield from`` in the driver).

        Returns ``"dispatch"`` or ``"shed"``. The waiter entry lives until
        the driver consumes the signal here — it may resolve synchronously
        inside :meth:`offer` (slot free on arrival) or much later — so the
        waiter map stays bounded by the pending+running population.
        """
        if not self.serving.admission:
            return SIGNAL_DISPATCH
        signal = yield self._waiters[slo.index]
        self._waiters.pop(slo.index, None)
        return signal

    def dispatch_ticket(self, slo: SLOJob) -> Optional[int]:
        """This job's dispatch sequence number (once; ``None`` thereafter).

        The driver forwards it to the submission path as the application's
        stable FIFO key, so same-instant dispatches reach the RM's AM queue
        in controller order regardless of event tie-breaking.
        """
        return self._tickets.pop(slo.index, None)

    def degraded_mode_for(self, slo: SLOJob) -> bool:
        """True when the overload ladder is active for this dispatch: the
        driver forces uber/U+ for latency jobs and suspends speculation for
        batch. Queried at dispatch time so the level reflects *current*
        backlog, not the backlog at admission."""
        return (self.serving.admission and self.serving.degradation
                and self.controller.degradation_level() >= 1)

    def _pump(self) -> None:
        if not self.serving.admission:
            return
        while True:
            job = self.controller.next_dispatch(self.slots())
            if job is None:
                return
            self._tickets[job.index] = next(self._dispatch_seq)
            waiter = self._waiters.get(job.index)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(SIGNAL_DISPATCH)

    def _resolve_shed(self, victim: SLOJob) -> None:
        self.counts["shed"] += 1
        waiter = self._waiters.get(victim.index)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(SIGNAL_SHED)

    def _watchdog(self) -> Generator:
        while True:
            yield self.env.timeout(self.serving.autoscale_interval_s)
            self._pump()

    # -- completion ------------------------------------------------------------
    def job_finished(self, slo: SLOJob, service_s: float) -> str:
        """Successful completion: train the estimator, settle the deadline."""
        if self.serving.admission:
            self.controller.job_finished(slo.index, slo.name, service_s)
        else:
            self._static_in_flight -= 1
        self._tickets.pop(slo.index, None)
        if slo.is_latency:
            met = self.env.now <= slo.deadline_s
            self.attainment.add(met)
            self._recent.append(1 if met else 0)
            outcome = OUTCOME_DEADLINE_MET if met else OUTCOME_DEADLINE_MISSED
        else:
            outcome = OUTCOME_COMPLETED
        self.counts[outcome if slo.is_latency else "batch_completed"] += 1
        self._pump()
        return outcome

    def job_aborted(self, slo: SLOJob) -> None:
        """A dispatched job died (killed or failed): free its slot only."""
        if self.serving.admission:
            self.controller.job_aborted(slo.index)
        else:
            self._static_in_flight -= 1
        self._tickets.pop(slo.index, None)
        self._pump()

    def recent_attainment(self) -> float:
        """Windowed attainment for the autoscaler (1.0 until enough data)."""
        if len(self._recent) < _RECENT_MIN_SAMPLES:
            return 1.0
        return sum(self._recent) / len(self._recent)

    # -- reporting -------------------------------------------------------------
    def finish(self, makespan_s: float) -> None:
        """Close the books at end of replay (node-hours accounting)."""
        if self.autoscaler is not None:
            self.autoscaler.finish()
            self._node_hours = self.autoscaler.stats()["node_hours"]
        else:
            # Static provisioning pays for every node for the whole run.
            self._node_hours = round(
                len(self.cluster.node_managers) * makespan_s / 3600.0, 6)

    def summary(self, digits: int = 6) -> dict:
        """The ``slo`` section of :class:`repro.trace.LoadReport`."""
        out = dict(self.counts)
        out["attainment"] = self.attainment.to_dict(digits)
        out["reject_reasons"] = {k: self.reject_reasons[k]
                                 for k in sorted(self.reject_reasons)}
        if self._node_hours is not None:
            out["node_hours"] = self._node_hours
        if self.autoscaler is not None:
            out["autoscaler"] = self.autoscaler.stats()
        return out
