"""Reactive autoscaling: add/drain simulated NodeManagers under load + faults.

The autoscaler closes the loop the admission controller only observes: when
backlog per healthy node exceeds the scale-up threshold, or windowed SLO
attainment drops below the floor, it provisions capacity; when the cluster
has been calm for several control rounds it drains the newest idle node.

Two interactions with the fault injector matter and are tested explicitly:

* **Crashed nodes are not capacity.** The healthy count excludes failed NMs,
  so node churn shrinks effective capacity and the controller reacts by
  provisioning replacements — self-healing rather than waiting for restarts.
* **Crashed nodes still bill.** ``node_seconds`` integrates *provisioned*
  nodes (everything not drained, plus capacity still spinning up), because a
  crashed VM keeps costing money until you drain or replace it. Node-hours
  is the cost axis of Figure S1.

Every decision is clocked off the simulation environment (fixed control
interval, fixed ``provision_delay_s``, no RNG), so two replays of the same
trace + fault plan + serving config are byte-identical.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Generator, Optional

from ..config import ServingConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..simcluster import SimCluster
    from ..yarn.nodemanager import NodeManager
    from .admission import AdmissionController


class Autoscaler:
    """Queue-depth + SLO-attainment driven NodeManager pool controller."""

    def __init__(self, cluster: "SimCluster", conf: ServingConfig,
                 controller: "AdmissionController",
                 attainment: Optional[Callable[[], float]] = None,
                 on_capacity_change: Optional[Callable[[], None]] = None) -> None:
        if conf.min_nodes < 1 or conf.max_nodes < conf.min_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        self.cluster = cluster
        self.env = cluster.env
        self.conf = conf
        self.controller = controller
        #: Windowed latency-SLO attainment in [0, 1]; defaults to "fine".
        self._attainment = attainment if attainment is not None else (lambda: 1.0)
        self._on_capacity_change = on_capacity_change
        self.scale_up_events = 0
        self.scale_down_events = 0
        self.node_seconds = 0.0
        self._provisioning = 0
        self._provision_seq = 0
        self._calm_rounds = 0
        self._billed_until = self.env.now
        self._proc = self.env.process(self._loop(), name="autoscaler")

    # -- capacity views --------------------------------------------------------
    def healthy_node_managers(self) -> list["NodeManager"]:
        """NMs that count toward serving capacity: alive and in service.

        Failed (crashed/blacklisted) and drained nodes are excluded — the
        core composition rule with the fault injector.
        """
        return [nm for nm in self.cluster.node_managers
                if not nm.failed and not nm.drained]

    def billable_count(self) -> int:
        """Nodes currently paid for: in service or crashed (still rented),
        plus capacity that is spinning up. Only drained nodes are free."""
        kept = sum(1 for nm in self.cluster.node_managers if not nm.drained)
        return kept + self._provisioning

    def slots(self) -> int:
        return len(self.healthy_node_managers()) * self.conf.slots_per_node

    def stats(self) -> dict:
        return {
            "scale_up_events": self.scale_up_events,
            "scale_down_events": self.scale_down_events,
            "node_hours": round(self.node_seconds / 3600.0, 6),
            "final_billable_nodes": self.billable_count(),
        }

    # -- billing ---------------------------------------------------------------
    def _accrue(self) -> None:
        now = self.env.now
        if now > self._billed_until:
            self.node_seconds += self.billable_count() * (now - self._billed_until)
            self._billed_until = now

    def finish(self) -> None:
        """Bill the final partial interval (call once when the replay ends)."""
        self._accrue()

    # -- control loop ----------------------------------------------------------
    def _loop(self) -> Generator:
        while True:
            yield self.env.timeout(self.conf.autoscale_interval_s)
            self._tick()

    def _desired_nodes(self, healthy: int) -> int:
        pending = self.controller.pending_count
        in_system = pending + self.controller.running_count
        desired = healthy
        # Scale up only past a pending-per-node deadband, so transient
        # bursts the current fleet will absorb don't trigger churn.
        backlog_per_node = pending / max(1, healthy)
        if backlog_per_node > self.conf.scale_up_pending_per_node:
            desired = math.ceil(in_system / self.conf.slots_per_node)
        elif pending == 0:
            # Queue fully drained: shrink toward what is actually running
            # (the calm-rounds counter in _tick debounces the drain itself).
            desired = math.ceil(in_system / self.conf.slots_per_node)
        if (self._attainment() < self.conf.attainment_floor
                and self.controller.pending_count > 0):
            desired = max(desired, healthy + 1)
        return max(self.conf.min_nodes, min(self.conf.max_nodes, desired))

    def _tick(self) -> None:
        self._accrue()
        healthy = self.healthy_node_managers()
        desired = self._desired_nodes(len(healthy))
        capacity = len(healthy) + self._provisioning
        if capacity < desired:
            self._calm_rounds = 0
            for _ in range(desired - capacity):
                if not self._scale_up_one():
                    break
        elif len(healthy) > desired and self._provisioning == 0:
            self._calm_rounds += 1
            if self._calm_rounds >= self.conf.scale_down_after_rounds:
                self._drain_one_idle(healthy)
                self._calm_rounds = 0
        else:
            self._calm_rounds = 0

    # -- scale up --------------------------------------------------------------
    def _scale_up_one(self) -> bool:
        # Prefer re-activating a drained (warm, already-built) node: it is
        # back in rotation at the next heartbeat, no provisioning delay.
        for nm in self.cluster.node_managers:
            if nm.drained and not nm.failed:
                nm.undrain()
                self.scale_up_events += 1
                self._notify()
                return True
        if self.billable_count() >= self.conf.max_nodes:
            return False
        self._provisioning += 1
        self._provision_seq += 1
        self.env.process(self._provision(),
                         name=f"provision-{self._provision_seq}")
        self.scale_up_events += 1
        return True

    def _provision(self) -> Generator:
        yield self.env.timeout(self.conf.provision_delay_s)
        self._accrue()
        self._provisioning -= 1
        self.cluster.add_node()
        self._notify()

    # -- scale down ------------------------------------------------------------
    def _drain_one_idle(self, healthy: list["NodeManager"]) -> None:
        if len(healthy) <= self.conf.min_nodes:
            return
        # Newest idle node first; "idle" means no containers at all, which
        # also protects nodes hosting pooled MRapid AMs (those are running
        # containers too).
        for nm in reversed(healthy):
            if not nm.running:
                nm.drain()
                self.scale_down_events += 1
                self._notify()
                return

    def _notify(self) -> None:
        if self._on_capacity_change is not None:
            self._on_capacity_change()
