"""SLO classes, per-job deadline resolution, and the serving size estimator.

The serving layer (:mod:`repro.serving`) distinguishes two tenant classes,
mirroring the split the paper's motivation draws between ad-hoc query
traffic and background jobs:

* ``latency`` — short, interactive jobs with a per-job deadline (absolute
  seconds after arrival). These are what MRapid exists for; the admission
  controller protects them under overload.
* ``batch`` — throughput work with no deadline. Batch is what gets shed
  first when the cluster cannot keep up (Pastorelli et al.'s size-based
  discipline: protecting short jobs costs large jobs little).

Size estimates come from :class:`SizeEstimator`, an EWMA over completed
*service* times (dispatch to finish, so queueing under load never inflates
the estimate) keyed by job signature — the same first-samples strategy
HFSP's training phase and ``repro.core.estimator`` use, kept separate so
admission works with every RM scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SLO_BATCH, SLO_CLASSES, SLO_LATENCY

__all__ = [
    "SLO_BATCH",
    "SLO_CLASSES",
    "SLO_LATENCY",
    "SLOJob",
    "SizeEstimator",
    "OUTCOME_ADMITTED",
    "OUTCOME_REJECTED",
    "OUTCOME_SHED",
    "OUTCOME_DOWNGRADED",
    "OUTCOME_DEADLINE_MET",
    "OUTCOME_DEADLINE_MISSED",
]

#: Per-job serving outcomes surfaced in ``LoadReport``/``repro trace --json``.
OUTCOME_ADMITTED = "admitted"
OUTCOME_REJECTED = "rejected"
OUTCOME_SHED = "shed"
OUTCOME_DOWNGRADED = "downgraded"
OUTCOME_DEADLINE_MET = "deadline_met"
OUTCOME_DEADLINE_MISSED = "deadline_missed"


@dataclass(frozen=True)
class SLOJob:
    """The admission controller's resolved view of one arrival.

    ``deadline_s`` is an *absolute* simulated timestamp (arrival + relative
    deadline); batch jobs carry ``inf``. Immutable so controller decisions
    can never mutate the job they judge.
    """

    index: int
    name: str
    slo_class: str
    arrival_s: float
    deadline_s: float = float("inf")

    def __post_init__(self) -> None:
        if self.slo_class not in SLO_CLASSES:
            raise ValueError(
                f"unknown SLO class {self.slo_class!r}; use one of {SLO_CLASSES}")

    @property
    def is_latency(self) -> bool:
        return self.slo_class == SLO_LATENCY


class SizeEstimator:
    """EWMA service-time estimate per job signature (admission's size oracle).

    Unseen signatures get ``initial_guess_s`` — optimistic, so new job types
    are measured rather than rejected on ignorance, exactly like HFSP's
    training phase.
    """

    __slots__ = ("initial_guess_s", "alpha", "_estimates", "_samples")

    def __init__(self, initial_guess_s: float = 8.0, alpha: float = 0.4) -> None:
        if initial_guess_s <= 0:
            raise ValueError("initial_guess_s must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.initial_guess_s = initial_guess_s
        self.alpha = alpha
        self._estimates: dict[str, float] = {}
        self._samples: dict[str, int] = {}

    def estimate(self, name: str) -> float:
        return self._estimates.get(name, self.initial_guess_s)

    def samples(self, name: str) -> int:
        return self._samples.get(name, 0)

    def observe(self, name: str, service_s: float) -> None:
        if service_s < 0:
            raise ValueError("service time cannot be negative")
        current = self._estimates.get(name)
        if current is None:
            self._estimates[name] = service_s
        else:
            self._estimates[name] = (self.alpha * service_s
                                     + (1.0 - self.alpha) * current)
        self._samples[name] = self._samples.get(name, 0) + 1

    def warm_start(self, store) -> None:
        """Seed estimates from a :class:`repro.tuner.RunHistoryStore`.

        Replays each signature's recorded *successful* runs (oldest first,
        whatever mode ran them) through :meth:`observe`, so admission's
        size oracle starts a replay already knowing job types a previous
        replay measured. Signatures already observed live are left alone.
        """
        from ..tuner.store import OUTCOME_SUCCESS

        for signature in store.signatures():
            if signature in self._estimates:
                continue
            for run in store.runs(signature, outcome=OUTCOME_SUCCESS):
                self.observe(signature, run.elapsed_s)

    def report(self) -> dict[str, dict[str, float]]:
        return {
            name: {"estimate_s": self._estimates[name],
                   "samples": float(self._samples.get(name, 0))}
            for name in sorted(self._estimates)
        }
