"""Size-based admission control with a bounded pending queue.

The controller sits between trace arrivals and YARN submission. Its job is
to make overload *graceful*: instead of letting an unbounded queue grow
(every job suffers equally, deadlines become fiction), it

1. predicts each arrival's sojourn from the size estimator and the backlog
   already admitted, and rejects (or, configurably, downgrades to batch)
   latency jobs whose prediction already busts their deadline — failing in
   milliseconds instead of missing in minutes;
2. bounds the pending queue at ``max_pending`` and, when full, sheds batch
   work first: a latency arrival evicts the youngest pending batch job;
   a batch arrival is simply rejected. A latency job is never shed to make
   room for batch (the property suite proves both invariants);
3. dispatches pending jobs into a concurrency window sized by the number of
   *healthy* nodes (``slots_per_node`` each) — earliest-deadline-first for
   latency, FIFO for batch behind them.

The controller is pure bookkeeping over :class:`~repro.serving.slo.SLOJob`
values: no simulation environment, no clocks of its own, every method takes
``now`` explicitly. That keeps it deterministic by construction and lets
the Hypothesis property tests drive it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import ServingConfig
from .slo import (
    OUTCOME_ADMITTED,
    OUTCOME_DOWNGRADED,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    SLO_BATCH,
    SizeEstimator,
    SLOJob,
)

#: Rejection reasons recorded in :class:`Decision.reason`.
REASON_DEADLINE = "deadline"
REASON_CAPACITY = "capacity"


@dataclass(frozen=True)
class Decision:
    """Outcome of one :meth:`AdmissionController.offer` call."""

    job: SLOJob
    outcome: str                       # admitted | rejected | downgraded
    reason: str = ""                   # deadline | capacity (rejections)
    predicted_sojourn_s: float = 0.0
    #: Pending batch job evicted to make room for this (latency) admission.
    shed: Optional[SLOJob] = None

    @property
    def admitted(self) -> bool:
        return self.outcome in (OUTCOME_ADMITTED, OUTCOME_DOWNGRADED)


@dataclass
class _Pending:
    job: SLOJob
    admitted_at: float
    #: True when a deadline-busting latency job was demoted to batch.
    downgraded: bool = False

    @property
    def effective_class(self) -> str:
        return SLO_BATCH if self.downgraded else self.job.slo_class


@dataclass
class AdmissionController:
    """Bounded, SLO-class-aware admission + dispatch front of the cluster."""

    conf: ServingConfig
    estimator: SizeEstimator = field(default_factory=SizeEstimator)

    def __post_init__(self) -> None:
        if self.conf.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._pending: list[_Pending] = []
        self._running: dict[int, float] = {}   # job index -> size estimate

    # -- introspection -------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def running_count(self) -> int:
        return len(self._running)

    def pending_fraction(self) -> float:
        return len(self._pending) / self.conf.max_pending

    def degradation_level(self) -> int:
        """Overload ladder: 0 normal, 1 elevated, 2 saturated.

        Level 1 forces uber/U+ mode for admitted latency jobs and suspends
        speculation for batch (the driver applies the mode mapping); level 2
        additionally means the pending queue is full, so batch arrivals are
        being shed.
        """
        if not self.conf.degradation:
            return 0
        fraction = self.pending_fraction()
        if fraction >= 1.0:
            return 2
        if fraction >= self.conf.degrade_at_pending_fraction:
            return 1
        return 0

    # -- prediction -----------------------------------------------------------
    def backlog_s(self) -> float:
        """Estimated work admitted but not finished (pending + running)."""
        return (sum(self.estimator.estimate(p.job.name) for p in self._pending)
                + sum(self._running.values()))

    def predicted_sojourn_s(self, job: SLOJob, slots: int) -> float:
        """Service estimate plus the backlog's drain time through ``slots``."""
        return (self.estimator.estimate(job.name)
                + self.backlog_s() / max(1, slots))

    # -- admission -------------------------------------------------------------
    def offer(self, job: SLOJob, now: float, slots: int) -> Decision:
        """Admit, downgrade, or reject one arrival (possibly shedding batch)."""
        predicted = self.predicted_sojourn_s(job, slots)
        downgraded = False
        if job.is_latency and now + predicted > job.deadline_s:
            if not self.conf.downgrade_over_reject:
                return Decision(job, OUTCOME_REJECTED, REASON_DEADLINE,
                                predicted_sojourn_s=predicted)
            downgraded = True

        shed: Optional[SLOJob] = None
        if len(self._pending) >= self.conf.max_pending:
            victim = self._youngest_pending_batch() if (job.is_latency
                                                        and not downgraded) else None
            if victim is None:
                return Decision(job, OUTCOME_REJECTED, REASON_CAPACITY,
                                predicted_sojourn_s=predicted)
            self._pending.remove(victim)
            shed = victim.job

        self._pending.append(_Pending(job, admitted_at=now, downgraded=downgraded))
        outcome = OUTCOME_DOWNGRADED if downgraded else OUTCOME_ADMITTED
        return Decision(job, outcome, predicted_sojourn_s=predicted, shed=shed)

    def offer_batch(self, jobs: list[SLOJob], now: float,
                    slots: int) -> list[Decision]:
        """Judge a set of equal-time arrivals in canonical order.

        Arrivals that share a timestamp are sorted latency-first, then by
        index, before being offered one at a time — so the decisions depend
        only on *what* arrived, never on the submission order the transport
        happened to deliver (the permutation-invariance property).
        """
        ordered = sorted(jobs, key=lambda j: (0 if j.is_latency else 1, j.index))
        return [self.offer(job, now, slots) for job in ordered]

    def _youngest_pending_batch(self) -> Optional[_Pending]:
        batches = [p for p in self._pending if p.effective_class == SLO_BATCH]
        if not batches:
            return None
        return max(batches, key=lambda p: p.job.index)

    # -- dispatch --------------------------------------------------------------
    def next_dispatch(self, slots: int) -> Optional[SLOJob]:
        """Pop the next pending job if a slot is free (None = keep waiting).

        Latency jobs go earliest-deadline-first; batch follows FIFO behind
        them. Downgraded jobs dispatch with batch.
        """
        if not self._pending or len(self._running) >= max(1, slots):
            return None
        entry = min(self._pending, key=self._dispatch_key)
        self._pending.remove(entry)
        self._running[entry.job.index] = self.estimator.estimate(entry.job.name)
        return entry.job

    @staticmethod
    def _dispatch_key(entry: _Pending) -> tuple:
        latency = entry.effective_class != SLO_BATCH
        return ((0, entry.job.deadline_s, entry.job.index) if latency
                else (1, 0.0, entry.job.index))

    def job_finished(self, index: int, name: str, service_s: float) -> None:
        """A dispatched job left the system: free its slot, train the oracle."""
        self._running.pop(index, None)
        self.estimator.observe(name, service_s)

    def job_aborted(self, index: int) -> None:
        """A dispatched job died (killed/failed): free the slot, no training."""
        self._running.pop(index, None)

    def shed_one_batch(self) -> Optional[SLOJob]:
        """Drop the youngest pending batch job (autoscaler/ladder pressure)."""
        victim = self._youngest_pending_batch()
        if victim is None:
            return None
        self._pending.remove(victim)
        return victim.job
