"""SLO-aware serving mode: admission control, degradation, autoscaling.

Turns the open-loop replay cluster into a *service* that degrades
gracefully under overload and node churn instead of letting queues grow
without bound. Enabled by setting ``HadoopConfig.serving`` to a
:class:`~repro.config.ServingConfig`; with the default (``None``) every
replay and figure is byte-identical to earlier releases.

See ``docs/serving.md`` for the design and Figure S1
(:mod:`repro.experiments.slosweep`) for the headline experiment.
"""

from ..config import SLO_BATCH, SLO_CLASSES, SLO_LATENCY, ServingConfig
from .admission import REASON_CAPACITY, REASON_DEADLINE, AdmissionController, Decision
from .autoscaler import Autoscaler
from .runtime import (
    OUTCOME_COMPLETED,
    SIGNAL_DISPATCH,
    SIGNAL_SHED,
    ServingRuntime,
)
from .slo import (
    OUTCOME_ADMITTED,
    OUTCOME_DEADLINE_MET,
    OUTCOME_DEADLINE_MISSED,
    OUTCOME_DOWNGRADED,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    SizeEstimator,
    SLOJob,
)

__all__ = [
    "AdmissionController",
    "Autoscaler",
    "Decision",
    "OUTCOME_ADMITTED",
    "OUTCOME_COMPLETED",
    "OUTCOME_DEADLINE_MET",
    "OUTCOME_DEADLINE_MISSED",
    "OUTCOME_DOWNGRADED",
    "OUTCOME_REJECTED",
    "OUTCOME_SHED",
    "REASON_CAPACITY",
    "REASON_DEADLINE",
    "SIGNAL_DISPATCH",
    "SIGNAL_SHED",
    "SLO_BATCH",
    "SLO_CLASSES",
    "SLO_LATENCY",
    "SLOJob",
    "ServingConfig",
    "ServingRuntime",
    "SizeEstimator",
]
