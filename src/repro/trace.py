"""Workload traces: bursts of short jobs arriving on a shared cluster.

The paper motivates MRapid with ad-hoc query traffic (Hive/Pig stages,
§I) — many small jobs arriving continuously, not one job on an idle
cluster. This module generates deterministic Poisson arrival traces over a
job mix and replays them against one shared simulated cluster, measuring
per-job response times (sojourn = finish - arrival) under each submission
strategy. Used by the pool-sizing and burst-throughput benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Sequence

import numpy as np

from .core.ampool import MODE_DPLUS, MODE_UPLUS
from .core.speculation import SpeculativeExecutor
from .mapreduce.client import MODE_AUTO, JobClient
from .mapreduce.spec import SimJobSpec
from .workloads.base import WorkloadProfile

if TYPE_CHECKING:  # pragma: no cover
    from .simcluster import SimCluster


@dataclass(frozen=True)
class JobTemplate:
    """One entry of a job mix."""

    name: str
    profile: WorkloadProfile
    num_files: int
    file_mb: float
    weight: float = 1.0


@dataclass(frozen=True)
class TraceJob:
    """A concrete arrival in a trace."""

    arrival_s: float
    template: JobTemplate
    index: int

    @property
    def signature(self) -> str:
        return self.template.name


def poisson_trace(mix: Sequence[JobTemplate], rate_per_minute: float,
                  duration_s: float, seed: int = 11) -> list[TraceJob]:
    """Deterministic Poisson arrivals over ``duration_s`` drawn from ``mix``."""
    if rate_per_minute <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    if not mix:
        raise ValueError("job mix cannot be empty")
    rng = np.random.default_rng(seed)
    weights = np.array([t.weight for t in mix], dtype=float)
    weights = weights / weights.sum()

    jobs: list[TraceJob] = []
    t = 0.0
    index = 0
    rate_per_s = rate_per_minute / 60.0
    while True:
        t += rng.exponential(1.0 / rate_per_s)
        if t >= duration_s:
            break
        template = mix[int(rng.choice(len(mix), p=weights))]
        jobs.append(TraceJob(arrival_s=round(t, 3), template=template, index=index))
        index += 1
    return jobs


@dataclass
class TraceStats:
    """Per-job response times for one replayed trace."""

    strategy: str
    arrivals: list[float] = field(default_factory=list)
    responses: list[float] = field(default_factory=list)  # finish - arrival
    killed: int = 0

    @property
    def count(self) -> int:
        return len(self.responses)

    @property
    def mean_response(self) -> float:
        return sum(self.responses) / len(self.responses) if self.responses else 0.0

    def percentile(self, q: float) -> float:
        if not self.responses:
            return 0.0
        ordered = sorted(self.responses)
        k = min(len(ordered) - 1, max(0, math.ceil(q / 100.0 * len(ordered)) - 1))
        return ordered[k]

    @property
    def makespan(self) -> float:
        if not self.responses:
            return 0.0
        finishes = [a + r for a, r in zip(self.arrivals, self.responses)]
        return max(finishes)

    def summary(self) -> str:
        return (f"{self.strategy}: {self.count} jobs, mean {self.mean_response:.1f}s, "
                f"p95 {self.percentile(95):.1f}s, makespan {self.makespan:.1f}s")


STRATEGY_STOCK = "stock-auto"
STRATEGY_DPLUS = "mrapid-dplus"
STRATEGY_UPLUS = "mrapid-uplus"
STRATEGY_SPECULATIVE = "mrapid-speculative"


def replay_trace(cluster: "SimCluster", trace: Sequence[TraceJob],
                 strategy: str = STRATEGY_SPECULATIVE) -> TraceStats:
    """Submit every trace job at its arrival time on the shared cluster.

    ``strategy`` selects the submission path:

    * ``stock-auto`` — stock client with Hadoop's uber-eligibility rule;
    * ``mrapid-dplus`` / ``mrapid-uplus`` — fixed MRapid mode via the pool;
    * ``mrapid-speculative`` — full Figure 6 protocol with shared history.

    The cluster must match the strategy (stock vs MRapid-built).
    """
    env = cluster.env
    stats = TraceStats(strategy=strategy)
    framework = getattr(cluster, "mrapid_framework", None)
    if strategy != STRATEGY_STOCK and framework is None:
        raise ValueError("MRapid strategies need build_mrapid_cluster()")
    executor = (SpeculativeExecutor(framework)
                if strategy == STRATEGY_SPECULATIVE else None)
    client = JobClient(cluster) if strategy == STRATEGY_STOCK else None

    def one_job(job: TraceJob) -> Generator:
        yield env.timeout(job.arrival_s)
        paths = cluster.load_input_files(
            f"/trace/{job.index:04d}", job.template.num_files, job.template.file_mb)
        spec = SimJobSpec(job.template.name, tuple(paths), job.template.profile,
                          signature=job.signature)
        if strategy == STRATEGY_STOCK:
            result = yield client.submit(spec, MODE_AUTO)
        elif strategy == STRATEGY_SPECULATIVE:
            outcome = yield executor.submit(spec)
            result = outcome.winner
        else:
            mode = MODE_DPLUS if strategy == STRATEGY_DPLUS else MODE_UPLUS
            handle = framework.submit(spec, mode)
            result = yield handle.proc
        stats.arrivals.append(job.arrival_s)
        stats.responses.append(env.now - job.arrival_s)
        if result.killed:
            stats.killed += 1

    procs = [env.process(one_job(job), name=f"trace-{job.index}") for job in trace]
    if procs:
        env.run(until=env.all_of(procs))
    return stats


def default_short_job_mix() -> list[JobTemplate]:
    """A Hive-flavoured mix: mostly small scans, some sorts, tiny aggs."""
    from .workloads.base import TERASORT_PROFILE, WORDCOUNT_PROFILE

    return [
        JobTemplate("scan", WORDCOUNT_PROFILE, num_files=4, file_mb=10.0, weight=5),
        JobTemplate("agg", WORDCOUNT_PROFILE, num_files=1, file_mb=8.0, weight=3),
        JobTemplate("sort", TERASORT_PROFILE, num_files=4, file_mb=12.0, weight=2),
    ]
