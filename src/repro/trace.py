"""Workload traces: bursts of short jobs arriving on a shared cluster.

The paper motivates MRapid with ad-hoc query traffic (Hive/Pig stages,
§I) — many small jobs arriving continuously, not one job on an idle
cluster. This module generates deterministic Poisson arrival traces over a
job mix and replays them against one shared simulated cluster, measuring
per-job response times (sojourn = finish - arrival) under each submission
strategy. Used by the pool-sizing and burst-throughput benchmarks.

Two replay drivers coexist:

* :func:`replay_trace` — the original closed-scope runner; keeps every
  per-job response in a :class:`TraceStats` list. Fine for dozens of jobs.
* :func:`replay_load` — the heavy-traffic runner: open-loop arrivals
  (arrival times never depend on completions), streaming P² percentiles
  instead of per-job histories, and aggressive cleanup (HDFS input files
  deleted, finished applications forgotten by the RM, the event log
  bounded) so one long-lived cluster can absorb thousands of jobs at
  bounded memory. Parse a trace file with :func:`parse_trace_file` or
  synthesize one with :func:`poisson_trace`, then drive it through
  :func:`run_load` which also picks the RM scheduler (stock FIFO-ish
  CapacityScheduler, the multi-tenant capacity scheduler, or HFSP).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, Optional, Sequence

import numpy as np

from .config import SLO_BATCH, SLO_CLASSES, SLO_LATENCY
from .core.ampool import MODE_DPLUS, MODE_UPLUS
from .core.speculation import SpeculativeExecutor
from .mapreduce.client import MODE_AUTO, MODE_UBER, JobClient
from .mapreduce.spec import SimJobSpec
from .metrics import StreamingSummary
from .serving.runtime import SIGNAL_SHED, ServingRuntime
from .serving.slo import OUTCOME_REJECTED, OUTCOME_SHED
from .workloads.base import WorkloadProfile
from .yarn.resourcemanager import JobKilled

if TYPE_CHECKING:  # pragma: no cover
    from .config import ClusterSpec, HadoopConfig
    from .faults.plan import FaultPlan
    from .simcluster import SimCluster


@dataclass(frozen=True)
class JobTemplate:
    """One entry of a job mix.

    ``slo_class``/``deadline_s`` declare the tenant SLO for the serving
    layer: ``latency`` jobs carry a relative deadline (``None`` falls back
    to ``ServingConfig.latency_deadline_s``), ``batch`` jobs have none.
    Both are inert unless ``HadoopConfig.serving`` is set.
    """

    name: str
    profile: WorkloadProfile
    num_files: int
    file_mb: float
    weight: float = 1.0
    slo_class: str = SLO_BATCH
    deadline_s: Optional[float] = None


@dataclass(frozen=True)
class TraceJob:
    """A concrete arrival in a trace.

    ``slo_override``/``deadline_override`` let a trace file pin a per-line
    SLO that differs from the template's default.
    """

    arrival_s: float
    template: JobTemplate
    index: int
    slo_override: Optional[str] = None
    deadline_override: Optional[float] = None

    @property
    def signature(self) -> str:
        return self.template.name

    @property
    def slo_class(self) -> str:
        return self.slo_override if self.slo_override is not None else self.template.slo_class

    @property
    def deadline_s(self) -> Optional[float]:
        """Relative deadline in seconds after arrival (latency class only)."""
        if self.deadline_override is not None:
            return self.deadline_override
        return self.template.deadline_s


def poisson_trace(mix: Sequence[JobTemplate], rate_per_minute: float,
                  duration_s: float, seed: int = 11) -> list[TraceJob]:
    """Deterministic Poisson arrivals over ``duration_s`` drawn from ``mix``."""
    if rate_per_minute <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    if not mix:
        raise ValueError("job mix cannot be empty")
    rng = np.random.default_rng(seed)
    weights = np.array([t.weight for t in mix], dtype=float)
    weights = weights / weights.sum()

    jobs: list[TraceJob] = []
    t = 0.0
    index = 0
    rate_per_s = rate_per_minute / 60.0
    while True:
        t += rng.exponential(1.0 / rate_per_s)
        if t >= duration_s:
            break
        template = mix[int(rng.choice(len(mix), p=weights))]
        jobs.append(TraceJob(arrival_s=round(t, 3), template=template, index=index))
        index += 1
    return jobs


@dataclass
class TraceStats:
    """Per-job response times for one replayed trace."""

    strategy: str
    arrivals: list[float] = field(default_factory=list)
    responses: list[float] = field(default_factory=list)  # finish - arrival
    killed: int = 0

    @property
    def count(self) -> int:
        return len(self.responses)

    @property
    def mean_response(self) -> float:
        return sum(self.responses) / len(self.responses) if self.responses else 0.0

    def percentile(self, q: float) -> float:
        if not self.responses:
            return 0.0
        ordered = sorted(self.responses)
        k = min(len(ordered) - 1, max(0, math.ceil(q / 100.0 * len(ordered)) - 1))
        return ordered[k]

    @property
    def makespan(self) -> float:
        if not self.responses:
            return 0.0
        finishes = [a + r for a, r in zip(self.arrivals, self.responses)]
        return max(finishes)

    def summary(self) -> str:
        return (f"{self.strategy}: {self.count} jobs, mean {self.mean_response:.1f}s, "
                f"p95 {self.percentile(95):.1f}s, makespan {self.makespan:.1f}s")


STRATEGY_STOCK = "stock-auto"
STRATEGY_DPLUS = "mrapid-dplus"
STRATEGY_UPLUS = "mrapid-uplus"
STRATEGY_SPECULATIVE = "mrapid-speculative"
#: Per-job learned choice among stock/D+/U+/uber via :mod:`repro.tuner`.
STRATEGY_AUTO = "mrapid-auto"


def replay_trace(cluster: "SimCluster", trace: Sequence[TraceJob],
                 strategy: str = STRATEGY_SPECULATIVE) -> TraceStats:
    """Submit every trace job at its arrival time on the shared cluster.

    ``strategy`` selects the submission path:

    * ``stock-auto`` — stock client with Hadoop's uber-eligibility rule;
    * ``mrapid-dplus`` / ``mrapid-uplus`` — fixed MRapid mode via the pool;
    * ``mrapid-speculative`` — full Figure 6 protocol with shared history.

    The cluster must match the strategy (stock vs MRapid-built).
    """
    env = cluster.env
    stats = TraceStats(strategy=strategy)
    framework = getattr(cluster, "mrapid_framework", None)
    if strategy != STRATEGY_STOCK and framework is None:
        raise ValueError("MRapid strategies need build_mrapid_cluster()")
    executor = (SpeculativeExecutor(framework)
                if strategy == STRATEGY_SPECULATIVE else None)
    client = JobClient(cluster) if strategy == STRATEGY_STOCK else None

    def one_job(job: TraceJob) -> Generator:
        yield env.timeout(job.arrival_s)
        paths = cluster.load_input_files(
            f"/trace/{job.index:04d}", job.template.num_files, job.template.file_mb)
        spec = SimJobSpec(job.template.name, tuple(paths), job.template.profile,
                          signature=job.signature)
        if strategy == STRATEGY_STOCK:
            result = yield client.submit(spec, MODE_AUTO)
        elif strategy == STRATEGY_SPECULATIVE:
            outcome = yield executor.submit(spec)
            result = outcome.winner
        else:
            mode = MODE_DPLUS if strategy == STRATEGY_DPLUS else MODE_UPLUS
            handle = framework.submit(spec, mode)
            result = yield handle.proc
        stats.arrivals.append(job.arrival_s)
        stats.responses.append(env.now - job.arrival_s)
        if result.killed:
            stats.killed += 1

    procs = [env.process(one_job(job), name=f"trace-{job.index}") for job in trace]
    if procs:
        env.run(until=env.all_of(procs))
    return stats


def default_short_job_mix() -> list[JobTemplate]:
    """A Hive-flavoured mix: mostly small scans, some sorts, tiny aggs."""
    from .workloads.base import TERASORT_PROFILE, WORDCOUNT_PROFILE

    return [
        JobTemplate("scan", WORDCOUNT_PROFILE, num_files=4, file_mb=10.0, weight=5),
        JobTemplate("agg", WORDCOUNT_PROFILE, num_files=1, file_mb=8.0, weight=3),
        JobTemplate("sort", TERASORT_PROFILE, num_files=4, file_mb=12.0, weight=2),
    ]


def default_serving_mix() -> list[JobTemplate]:
    """The short-job mix with SLO classes: interactive queries are
    ``latency`` tenants (deadline from ``ServingConfig``), sorts are
    ``batch`` and absorb any load shedding."""
    return [t if t.name == "sort"
            else JobTemplate(t.name, t.profile, t.num_files, t.file_mb,
                             weight=t.weight, slo_class=SLO_LATENCY)
            for t in default_short_job_mix()]


def _parse_slo_token(token: str, lineno: int) -> tuple[str, Optional[float]]:
    """``latency``, ``batch``, or ``latency:<deadline_s>``."""
    name, _, deadline = token.partition(":")
    if name not in SLO_CLASSES:
        raise ValueError(f"trace line {lineno}: expected SLO "
                         f"'latency[:deadline_s]' or 'batch', got {token!r}")
    if not deadline:
        return name, None
    if name != SLO_LATENCY:
        raise ValueError(f"trace line {lineno}: expected no deadline on a "
                         f"batch job, got {token!r}")
    value = float(deadline)
    if value <= 0:
        raise ValueError(f"trace line {lineno}: deadline must be positive")
    return name, value


def parse_trace_file(text: str, mix: Sequence[JobTemplate]) -> list[TraceJob]:
    """Parse a replay trace: ``<arrival_s> <template_name> [slo]`` per line.

    Blank lines and ``#`` comments are skipped. Arrivals must be
    non-decreasing so the file is replayable open-loop; template names must
    exist in ``mix``. The optional third token pins the job's SLO class —
    ``batch``, ``latency``, or ``latency:30`` (relative deadline seconds) —
    overriding the template default. Returns :class:`TraceJob` entries
    indexed in file order.
    """
    by_name = {t.name: t for t in mix}
    jobs: list[TraceJob] = []
    last = 0.0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise ValueError(f"trace line {lineno}: expected "
                             f"'<arrival_s> <template> [slo]'")
        arrival = float(parts[0])
        if arrival < last:
            raise ValueError(f"trace line {lineno}: arrivals must be non-decreasing")
        template = by_name.get(parts[1])
        if template is None:
            raise ValueError(f"trace line {lineno}: unknown template {parts[1]!r} "
                             f"(known: {sorted(by_name)})")
        slo_override = deadline_override = None
        if len(parts) == 3:
            slo_override, deadline_override = _parse_slo_token(parts[2], lineno)
        jobs.append(TraceJob(arrival_s=arrival, template=template, index=len(jobs),
                             slo_override=slo_override,
                             deadline_override=deadline_override))
        last = arrival
    return jobs


# -- heavy-traffic replay ------------------------------------------------------

SCHEDULER_FIFO = "fifo"
SCHEDULER_CAPACITY = "capacity"
SCHEDULER_HFSP = "hfsp"
TRACE_SCHEDULERS = (SCHEDULER_FIFO, SCHEDULER_CAPACITY, SCHEDULER_HFSP)
TRACE_STRATEGIES = (STRATEGY_STOCK, STRATEGY_DPLUS, STRATEGY_UPLUS,
                    STRATEGY_SPECULATIVE, STRATEGY_AUTO)

#: Ring-buffer size for the shared event log during replay (bounded RSS).
_REPLAY_LOG_LIMIT = 4096


def _make_trace_scheduler(name: str):
    from .yarn.hfsp import HFSPScheduler
    from .yarn.queues import MultiTenantCapacityScheduler, QueueConfig
    from .yarn.scheduler import CapacityScheduler

    if name == SCHEDULER_FIFO:
        return CapacityScheduler()
    if name == SCHEDULER_CAPACITY:
        return MultiTenantCapacityScheduler([
            QueueConfig("adhoc", fraction=0.7, max_fraction=1.0),
            QueueConfig("batch", fraction=0.3, max_fraction=1.0),
        ])
    if name == SCHEDULER_HFSP:
        return HFSPScheduler(memory_only=True)
    raise ValueError(f"unknown trace scheduler {name!r}; use one of {TRACE_SCHEDULERS}")


def default_queue_of(template_name: str) -> str:
    """Tenant-queue routing for the capacity scheduler: sorts are 'batch'."""
    return "batch" if template_name == "sort" else "adhoc"


def build_trace_cluster(spec: "ClusterSpec", scheduler: str = SCHEDULER_FIFO,
                        strategy: str = STRATEGY_STOCK,
                        conf: Optional["HadoopConfig"] = None,
                        seed: int = 7) -> "SimCluster":
    """A long-lived cluster for trace replay: any scheduler × any strategy.

    Unlike :func:`repro.core.submit.build_mrapid_cluster` (which hardwires
    the D+ scheduler), this crosses the RM scheduler axis with the
    submission-path axis: MRapid strategies get a
    :class:`~repro.core.ampool.SubmissionFramework` attached whatever
    scheduler is installed, so HFSP-under-MRapid is a valid cell of the
    load-sweep matrix.
    """
    from .config import MRapidConfig
    from .core.ampool import SubmissionFramework
    from .simcluster import SimCluster

    cluster = SimCluster(spec, conf=conf, scheduler=_make_trace_scheduler(scheduler),
                         seed=seed)
    if strategy != STRATEGY_STOCK:
        cluster.mrapid_framework = SubmissionFramework(  # type: ignore[attr-defined]
            cluster, MRapidConfig())
    return cluster


def template_baselines(spec: "ClusterSpec", mix: Sequence[JobTemplate],
                       conf: Optional["HadoopConfig"] = None,
                       seed: int = 7) -> dict[str, float]:
    """Idle-cluster service time per template (the slowdown denominator).

    Always measured on the stock scheduler/stock path so slowdowns are
    comparable across every scheduler × strategy cell of a sweep.
    """
    baselines: dict[str, float] = {}
    for template in mix:
        cluster = build_trace_cluster(spec, conf=conf, seed=seed)
        paths = cluster.load_input_files(f"/baseline/{template.name}",
                                         template.num_files, template.file_mb)
        job_spec = SimJobSpec(template.name, tuple(paths), template.profile,
                              signature=template.name)
        result = JobClient(cluster).run(job_spec, MODE_AUTO)
        baselines[template.name] = result.elapsed
    return baselines


@dataclass
class LoadReport:
    """Streaming-aggregate outcome of one heavy-traffic replay.

    Deliberately holds no per-job lists unless ``keep_jobs`` was requested:
    sojourn/slowdown/queue-depth distributions live in O(1)-memory
    :class:`~repro.metrics.StreamingSummary` accumulators so a replay of
    thousands of jobs costs the same RSS as a replay of ten.
    """

    strategy: str
    scheduler: str = ""
    rate_per_minute: float = 0.0
    duration_s: float = 0.0
    jobs_submitted: int = 0
    jobs_completed: int = 0
    killed: int = 0
    failed: int = 0
    makespan_s: float = 0.0
    sojourn: StreamingSummary = field(default_factory=StreamingSummary)
    slowdown: StreamingSummary = field(default_factory=StreamingSummary)
    queue_depth: StreamingSummary = field(default_factory=StreamingSummary)
    peak_in_flight: int = 0
    #: Mode decisions actually taken, e.g. {"hadoop-uber": 41, ...}.
    decisions: dict[str, int] = field(default_factory=dict)
    #: Per-job rows, only populated when ``keep_jobs=True``.
    per_job: list[dict] = field(default_factory=list)
    #: Serving-mode section (SLO attainment, admission/autoscaler counters);
    #: empty — and absent from :meth:`to_dict` — unless the replay ran with
    #: ``HadoopConfig.serving`` set.
    slo: dict = field(default_factory=dict)
    #: Telemetry section (scrape stats, fired alerts, per-window series);
    #: empty — and absent from :meth:`to_dict` — unless the replay ran with
    #: ``HadoopConfig.telemetry`` set.
    telemetry: dict = field(default_factory=dict)
    #: Tuner section (decision provenance counts, store size); empty — and
    #: absent from :meth:`to_dict` — unless the replay ran ``STRATEGY_AUTO``.
    tuner: dict = field(default_factory=dict)

    def to_dict(self, digits: int = 6) -> dict:
        """JSON-stable dict (used by the CLI and the determinism checks)."""
        out = {
            "strategy": self.strategy,
            "scheduler": self.scheduler,
            "rate_per_minute": round(self.rate_per_minute, digits),
            "duration_s": round(self.duration_s, digits),
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "killed": self.killed,
            "failed": self.failed,
            "makespan_s": round(self.makespan_s, digits),
            "peak_in_flight": self.peak_in_flight,
            "sojourn": self.sojourn.to_dict(digits),
            "slowdown": self.slowdown.to_dict(digits),
            "queue_depth": self.queue_depth.to_dict(digits),
            "decisions": {k: self.decisions[k] for k in sorted(self.decisions)},
        }
        if self.slo:
            out["slo"] = self.slo
        if self.telemetry:
            out["telemetry"] = self.telemetry
        if self.tuner:
            out["tuner"] = self.tuner
        if self.per_job:
            out["jobs"] = self.per_job
        return out

    def summary(self) -> str:
        line = (f"{self.scheduler or 'fifo'}/{self.strategy}: "
                f"{self.jobs_completed}/{self.jobs_submitted} jobs, "
                f"sojourn mean {self.sojourn.mean:.1f}s "
                f"p95 {self.sojourn.p95:.1f}s p99 {self.sojourn.p99:.1f}s, "
                f"peak in-flight {self.peak_in_flight}")
        if self.slo:
            att = self.slo.get("attainment", {})
            line += (f", SLO attainment {att.get('fraction', 1.0):.1%}"
                     f" ({att.get('hits', 0)}/{att.get('total', 0)})"
                     f", rejected {self.slo.get('rejected', 0)}"
                     f" shed {self.slo.get('shed', 0)}")
        if self.telemetry:
            line += (f", telemetry {self.telemetry.get('scrapes', 0)} scrapes"
                     f"/{self.telemetry.get('alerts_fired', 0)} alerts")
        if self.tuner:
            srcs = self.tuner.get("sources", {})
            line += (", tuner " + "/".join(f"{k}:{srcs[k]}" for k in sorted(srcs))
                     + (" (learning)" if self.tuner.get("learning") else ""))
        return line


def replay_load(cluster: "SimCluster", trace: Sequence[TraceJob],
                strategy: str = STRATEGY_STOCK, *,
                baselines: Optional[dict[str, float]] = None,
                keep_jobs: bool = False,
                queue_of: Optional[Callable[[str], str]] = None,
                fault_plan: Optional["FaultPlan"] = None) -> LoadReport:
    """Open-loop replay of ``trace`` on one long-lived cluster.

    Arrivals are driven by a single generator clocked purely off the trace
    (never off completions), so offered load is independent of how far the
    cluster falls behind — the heavy-traffic regime the closed-loop
    :func:`replay_trace` cannot produce. Per-job state is discarded as jobs
    finish: input files are deleted from HDFS, the RM forgets terminal
    applications, and the shared event log is bounded, keeping peak RSS
    flat in trace length. Metrics stream into :class:`LoadReport`.

    ``baselines`` (template name -> idle service time) enables slowdown
    accounting; ``queue_of`` routes templates to tenant queues when the
    cluster runs the multi-tenant scheduler; ``fault_plan`` injects node
    churn/gray failures into the replay (jobs whose AMs die terminally are
    counted ``failed``, never crash the run).

    When ``cluster.conf.serving`` is set, the replay runs through
    :class:`~repro.serving.runtime.ServingRuntime`: arrivals pass admission
    (with retry-with-backoff on rejection), wait for a dispatch slot, may be
    shed while pending, submit in degraded modes under overload, and settle
    their deadline on completion. The report gains a ``slo`` section.
    """
    env = cluster.env
    framework = getattr(cluster, "mrapid_framework", None)
    if strategy != STRATEGY_STOCK and framework is None:
        raise ValueError("MRapid strategies need a cluster with a SubmissionFramework "
                         "(build_trace_cluster or build_mrapid_cluster)")
    executor = (SpeculativeExecutor(framework)
                if strategy in (STRATEGY_SPECULATIVE, STRATEGY_AUTO) else None)
    client = (JobClient(cluster)
              if strategy in (STRATEGY_STOCK, STRATEGY_AUTO) else None)
    picker = history = None
    if strategy == STRATEGY_AUTO:
        from .config import TunerConfig
        from .tuner import (AutoModePicker, RunHistoryStore,
                            record_from_result, template_inputs)
        tuner_conf = (cluster.conf.tuner if cluster.conf.tuner is not None
                      else TunerConfig())
        history = (RunHistoryStore(tuner_conf.history_db,
                                   ring_size=tuner_conf.ring_size)
                   if tuner_conf.history_db else None)
        picker = AutoModePicker(history, tuner_conf)
    serving = cluster.conf.serving
    runtime = ServingRuntime(cluster, serving) if serving is not None else None
    telemetry = None
    if cluster.conf.telemetry is not None:
        from .telemetry import install_telemetry
        telemetry = install_telemetry(cluster, cluster.conf.telemetry)
        if runtime is not None:
            telemetry.attach_serving(runtime)
    report = LoadReport(strategy=strategy, jobs_submitted=len(trace))
    if not trace:
        return report
    if fault_plan is not None and len(fault_plan):
        from .faults.injector import inject
        inject(cluster, fault_plan)
    if history is not None and len(history):
        # Durable history warm-starts the sibling estimators: HFSP's
        # size-training phase and the serving admission size oracle skip
        # their cold start for signatures a previous replay measured.
        warm = getattr(cluster.rm.scheduler, "warm_start", None)
        if warm is not None:
            warm(history)
        if runtime is not None:
            runtime.controller.estimator.warm_start(history)

    cluster.log.bound(_REPLAY_LOG_LIMIT)
    cluster.rm.retain_finished_apps = False
    tracer = env.tracer

    in_flight = 0
    completed = 0
    all_submitted = False
    done = env.event()

    def note_depth() -> None:
        report.queue_depth.add(float(in_flight))
        report.peak_in_flight = max(report.peak_in_flight, in_flight)

    def one_job(job: TraceJob) -> Generator:
        nonlocal in_flight, completed
        slo = runtime.resolve(job) if runtime is not None else None
        paths: list[str] = []
        outputs: list[str] = []
        result = None
        decision = "killed"
        outcome: Optional[str] = None
        dispatched = False
        auto = None  # the tuner's AutoDecision when strategy is AUTO

        def record_row(label: Optional[str], sojourn: Optional[float] = None) -> None:
            if not keep_jobs:
                return
            row: dict = {"index": job.index, "name": job.template.name,
                         "arrival_s": round(job.arrival_s, 6)}
            if sojourn is not None:
                row["sojourn_s"] = round(sojourn, 6)
                row["decision"] = decision
            if runtime is not None:
                row["slo_class"] = slo.slo_class
                row["outcome"] = label
            if sojourn is not None or runtime is not None:
                report.per_job.append(row)

        try:
            if runtime is not None:
                attempt = 0
                while True:
                    admit = runtime.offer(slo)
                    if admit.admitted:
                        break
                    if attempt >= serving.retry_max:
                        outcome = decision = runtime.record_rejection(admit)
                        record_row(outcome)
                        return
                    yield env.timeout(runtime.retry_delay_s(attempt))
                    attempt += 1
                    runtime.record_retry()
                signal = yield from runtime.wait_dispatch(slo)
                if signal == SIGNAL_SHED:
                    outcome = decision = OUTCOME_SHED
                    record_row(outcome)
                    return
                dispatched = True
            dispatched_at = env.now
            paths = cluster.load_input_files(
                f"/trace/{job.index:05d}", job.template.num_files, job.template.file_mb)
            spec = SimJobSpec(job.template.name, tuple(paths), job.template.profile,
                              signature=job.signature)
            degraded = runtime is not None and runtime.degraded_mode_for(slo)
            try:
                if strategy == STRATEGY_STOCK:
                    queue = queue_of(job.template.name) if queue_of is not None else None
                    mode = MODE_UBER if degraded and slo.is_latency else MODE_AUTO
                    # The admission controller's dispatch ticket pins this
                    # job's AM-queue position: several jobs dispatched at
                    # one instant must reach the RM in controller (EDF)
                    # order, not kernel tie-break order.
                    ticket = (runtime.dispatch_ticket(slo)
                              if runtime is not None else None)
                    result = yield client.submit(spec, mode, queue=queue,
                                                 fifo_key=ticket)
                    decision = result.mode
                elif strategy == STRATEGY_SPECULATIVE and not degraded:
                    spec_outcome = yield executor.submit(spec)
                    result = spec_outcome.winner
                    decision = f"mrapid-{spec_outcome.winner_mode}"
                    if spec_outcome.loser is not None:
                        outputs.append(f"/out/{spec_outcome.loser.app_id}")
                elif strategy == STRATEGY_AUTO and not degraded:
                    # Per-job learned choice: Eq. 1–3 while cold, history
                    # once the store has trained this signature.
                    inputs = template_inputs(cluster, job.template.num_files,
                                             job.template.file_mb,
                                             job.template.profile)
                    auto = picker.decide(job.signature, inputs)
                    decision = f"auto-{auto.mode}"
                    if auto.mode in ("stock", "uber"):
                        queue = (queue_of(job.template.name)
                                 if queue_of is not None else None)
                        ticket = (runtime.dispatch_ticket(slo)
                                  if runtime is not None else None)
                        mode = MODE_UBER if auto.mode == "uber" else MODE_AUTO
                        result = yield client.submit(spec, mode, queue=queue,
                                                     fifo_key=ticket)
                    elif auto.mode == "speculative":
                        spec_outcome = yield executor.submit(spec)
                        result = spec_outcome.winner
                        if spec_outcome.loser is not None:
                            outputs.append(f"/out/{spec_outcome.loser.app_id}")
                    else:
                        mode = MODE_DPLUS if auto.mode == "dplus" else MODE_UPLUS
                        handle = framework.submit(spec, mode)
                        result = yield handle.proc
                else:
                    if degraded:
                        # Overload ladder: latency jobs straight to U+ (no
                        # sizing detour), batch straight to D+ (speculation
                        # suspended — no duplicate AMs under pressure).
                        mode = MODE_UPLUS if slo.is_latency else MODE_DPLUS
                    else:
                        mode = MODE_DPLUS if strategy == STRATEGY_DPLUS else MODE_UPLUS
                    handle = framework.submit(spec, mode)
                    result = yield handle.proc
                    decision = result.mode
            except JobKilled:
                report.killed += 1
                outcome = "killed"
            except Exception:
                # Under a fault plan an AM can die terminally (attempts
                # exhausted); the submission future re-raises. One dead job
                # must not kill a thousand-job replay.
                report.failed += 1
                outcome = "failed"
            sojourn = env.now - job.arrival_s
            if result is not None:
                if result.killed:
                    report.killed += 1
                    outcome = "killed"
                elif result.failed:
                    report.failed += 1
                    outcome = "failed"
            success = (result is not None
                       and not result.killed and not result.failed)
            if auto is not None:
                # Feed the outcome back into the store — killed/failed runs
                # are recorded too (so the ring reflects reality) but never
                # count toward training (the estimator uses successes only).
                if result is not None:
                    picker.observe_record(record_from_result(
                        result, job.signature, auto.mode,
                        input_mb=job.template.num_files * job.template.file_mb,
                        finished_at=env.now))
                else:
                    picker.observe(job.signature, auto.mode,
                                   max(0.0, env.now - dispatched_at),
                                   outcome=outcome or "failed",
                                   finished_at=env.now)
            if success:
                if runtime is not None:
                    outcome = runtime.job_finished(slo, env.now - dispatched_at)
                report.sojourn.add(sojourn)
                baseline = (baselines or {}).get(job.template.name, 0.0)
                if baseline > 0:
                    report.slowdown.add(sojourn / baseline)
                report.decisions[decision] = report.decisions.get(decision, 0) + 1
                record_row(outcome, sojourn)
            else:
                if runtime is not None:
                    if dispatched:
                        runtime.job_aborted(slo)
                    record_row(outcome)
            if tracer is not None:
                from .observe.tracer import CLUSTER
                tracer.complete(job.template.name, "trace-job", CLUSTER,
                                f"trace:{job.template.name}", job.arrival_s,
                                index=job.index, decision=decision,
                                sojourn_s=round(sojourn, 6))
        finally:
            if result is not None:
                outputs.append(f"/out/{result.app_id}")
            for path in paths + outputs:
                if cluster.namenode.exists(path):
                    cluster.namenode.delete(path)
            in_flight -= 1
            note_depth()
            completed += 1
            report.jobs_completed = completed
            if all_submitted and completed == len(trace) and not done.triggered:
                done.succeed(None)

    def arrivals() -> Generator:
        nonlocal in_flight, all_submitted
        for job in trace:
            delay = job.arrival_s - env.now
            if delay > 0:
                yield env.timeout(delay)
            in_flight += 1
            note_depth()
            env.process(one_job(job), name=f"trace-{job.index}")
        all_submitted = True
        if completed == len(trace) and not done.triggered:
            done.succeed(None)

    env.process(arrivals(), name="trace-arrivals")
    env.run(until=done)
    report.makespan_s = env.now
    if runtime is not None:
        runtime.finish(report.makespan_s)
        report.slo = runtime.summary()
    if telemetry is not None:
        telemetry.finish()
        report.telemetry = telemetry.report_section()
    if picker is not None:
        report.tuner = picker.report()
        if history is not None:
            history.close()
    return report


def run_load(spec: "ClusterSpec", mix: Sequence[JobTemplate],
             rate_per_minute: float, duration_s: float, *,
             scheduler: str = SCHEDULER_FIFO, strategy: str = STRATEGY_STOCK,
             conf: Optional["HadoopConfig"] = None, seed: int = 11,
             keep_jobs: bool = False,
             baselines: Optional[dict[str, float]] = None,
             trace: Optional[Sequence[TraceJob]] = None,
             fault_plan: Optional["FaultPlan"] = None) -> LoadReport:
    """Generate (or accept) a trace and replay it on a fresh cluster.

    The one-call entry point the CLI and the load sweep use: picks the RM
    scheduler, attaches the MRapid framework when the strategy needs it,
    measures idle-cluster baselines for slowdowns (on a pristine cluster —
    faults only apply to the replay itself), and streams the replay through
    :func:`replay_load`.
    """
    if strategy not in TRACE_STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; use one of {TRACE_STRATEGIES}")
    if trace is None:
        trace = poisson_trace(mix, rate_per_minute, duration_s, seed=seed)
    if baselines is None:
        baselines = template_baselines(spec, mix, conf=conf)
    cluster = build_trace_cluster(spec, scheduler=scheduler, strategy=strategy,
                                  conf=conf)
    queue_of = default_queue_of if scheduler == SCHEDULER_CAPACITY else None
    report = replay_load(cluster, trace, strategy, baselines=baselines,
                         keep_jobs=keep_jobs, queue_of=queue_of,
                         fault_plan=fault_plan)
    report.scheduler = scheduler
    report.rate_per_minute = rate_per_minute
    report.duration_s = duration_s
    return report
