"""The simulation :class:`Environment`: clock, event queue, run loop."""

from __future__ import annotations

from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

from .bucketq import BucketQueue
from .errors import EmptySchedule, SimulationError, StopSimulation
from .events import NORMAL, AllOf, AnyOf, Event, Process, Timeout


class Environment:
    """Execution environment for a single discrete-event simulation.

    Time is a float in *seconds* by convention throughout this project.
    Events are processed in (time, priority, insertion-order) order, which
    makes runs fully deterministic. The queue is a calendar/bucketed heap
    (:class:`~repro.simulation.bucketq.BucketQueue`) so push/pop cost stays
    flat as pending-timer counts grow into the tens of thousands on large
    simulated clusters; its pop order is identical to the flat ``heapq`` it
    replaced.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue = BucketQueue()
        self._eid = count()
        self._active_proc: Optional[Process] = None
        #: Count of events dispatched by :meth:`step` since construction —
        #: the numerator of the bench harness's events/s throughput gates.
        self.events_processed = 0
        #: Optional callables ``fn(time, event)`` invoked as each event is
        #: popped; used by tracing/monitoring utilities.
        self.tracers: list[Callable[[float, Event], None]] = []
        #: Span tracer (:class:`repro.observe.Tracer`) or ``None``. Every
        #: instrumentation site in the stack guards on ``is not None``, so
        #: the default costs one attribute read per site and nothing else.
        self.tracer: Optional[Any] = None
        #: Telemetry facade (:class:`repro.telemetry.Telemetry`) or ``None``.
        #: Same zero-overhead-when-disabled discipline as ``tracer``: push
        #: sites guard on ``is not None``, and the scraper samples from the
        #: :attr:`sampler` hook so enabling it adds no events to the queue.
        self.telemetry: Optional[Any] = None
        #: Telemetry scraper fast path. :meth:`step` compares each popped
        #: event's time against :attr:`sample_next` inline — one attribute
        #: read and one float compare — and calls ``sampler(when)`` only
        #: when a scrape grid point is due. Kept separate from
        #: :attr:`tracers` because routing the scraper through that list
        #: would pay a function call on *every* event just to return.
        self.sampler: Optional[Callable[[float], None]] = None
        self.sample_next = float("inf")

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Queue ``event`` to be processed ``delay`` units from now."""
        self._queue.push((self._now + delay, priority, next(self._eid), event))

    def schedule_at(self, event: Event, at: float, priority: int = NORMAL) -> None:
        """Queue ``event`` at the *absolute* time ``at`` (>= now).

        Unlike :meth:`schedule`, the timestamp is used exactly as given —
        no ``now + delay`` round-trip — so periodic machinery (the NM
        heartbeat wheel) can hit grid points like ``anchor + k*period``
        without accruing float error.
        """
        if at < self._now:
            raise ValueError(f"schedule_at({at}) lies in the past (now={self._now})")
        self._queue.push((at, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        when = self._queue.peek_time()
        return when if when is not None else float("inf")

    def queue_stats(self) -> dict[str, int]:
        """Occupancy snapshot of the calendar queue (telemetry/bench)."""
        return self._queue.stats()

    def step(self) -> None:
        """Process the single next event.

        An unhandled failed event (no process caught it and nobody defused
        it) re-raises its exception here, crashing the simulation — mirrors
        an uncaught exception in a real daemon thread.
        """
        try:
            when, _, _, event = self._queue.pop()
        except IndexError:
            raise EmptySchedule() from None

        self._now = when
        self.events_processed += 1
        if when >= self.sample_next:
            self.sampler(when)
        if self.tracers:
            for tracer in self.tracers:
                tracer(when, event)

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or queue exhaustion).

        * ``until is None`` — run until no events remain.
        * ``until`` is a number — run to that simulation time.
        * ``until`` is an :class:`Event` — run until it fires and return its
          value.
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:
                    # Already processed: nothing to run.
                    if not stop._ok:
                        raise stop._value
                    return stop._value
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until={at} lies in the past (now={self._now})")
                stop = Timeout(self, at - self._now)
            stop.callbacks.append(_stop_simulation)  # type: ignore[union-attr]

        try:
            while True:
                self.step()
        except StopSimulation as exc:
            return exc.value
        except EmptySchedule:
            if stop is not None and not stop.triggered:
                raise SimulationError(
                    "run(until=event) exhausted the schedule before the event fired"
                ) from None
            return None


def _stop_simulation(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    event._defused = True
    raise event._value
