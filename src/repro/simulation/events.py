"""Event primitives for the discrete-event kernel.

The design follows the classic event/process pattern: an :class:`Event` is a
one-shot occurrence with a value (or an exception); a :class:`Process` wraps a
generator that *yields* events and is resumed when each yielded event fires.
Composite conditions (:class:`AllOf` / :class:`AnyOf`) let a process wait for
several events at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

from .errors import Interrupt, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Environment

#: Sentinel marking an event that has not been triggered yet.
PENDING = object()

#: Scheduling priorities. Lower runs first at equal simulation time.
URGENT = 0
NORMAL = 1
#: Runs after every same-instant NORMAL event: for periodic *observers*
#: (heartbeat ticks, samplers) that must see the settled state of their
#: instant. Without it, whether a beat at time t notices a submission at
#: time t depends on queue insertion order — a same-timestamp race the
#: sanitizer (``repro lint --sanitize-races``) would flag.
DEFERRED = 2


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event is *triggered* once it has a value (success) or an exception
    (failure) and has been placed on the environment's queue; it is
    *processed* after its callbacks have run.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables ``fn(event)`` invoked when the event is processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is PENDING:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event has not been triggered")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the outcome of another (already triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A process wraps a generator; the process event fires on return.

    The generator yields :class:`Event` instances. When a yielded event is
    processed the generator is resumed with the event's value (or the event's
    exception is thrown into it). The process itself is an event whose value
    is the generator's return value, so processes can wait on each other.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting for.
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process that
        is waiting on an event detaches it from that event first.
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_proc = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The exception is now being handled by this process.
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                env._active_proc = None
                self._target = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_proc = None
                self._target = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                # Deliver the mistake as a failed pseudo-event so the normal
                # resume path throws it at the faulty yield. Whatever the
                # generator does next — propagate (process fails), return
                # (process succeeds), or recover by yielding a real event —
                # the process event is resolved; a bare ``throw`` here could
                # leave the process pending forever if the generator caught
                # the exception.
                bad_yield = Event(env)
                bad_yield._ok = False
                bad_yield._value = TypeError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                bad_yield._defused = True
                event = bad_yield
                continue

            if next_event.callbacks is not None:
                # Event still pending or triggered-but-unprocessed: wait on it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: consume its outcome immediately.
            event = next_event
            if not event._ok and not event._defused:
                event._defused = True

        env._active_proc = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name} {state}>"


class Interruption(Event):
    """Helper event that delivers an :class:`Interrupt` to a process."""

    __slots__ = ("process",)

    def __init__(self, process: Process, cause: Any) -> None:
        super().__init__(process.env)
        self.process = process
        self.callbacks = [self._deliver]
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        process.env.schedule(self, priority=URGENT)

    def _deliver(self, event: Event) -> None:
        process = self.process
        if not process.is_alive:
            return  # finished in the meantime; interrupt is moot
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
            # Nobody is listening to the abandoned wait anymore: give queue
            # events (store gets/puts, resource requests) the chance to
            # withdraw, so e.g. an interrupted Store.get() doesn't later
            # swallow an item no process will ever receive.
            if not target.callbacks and not target.triggered:
                abandon = getattr(target, "abandon", None)
                if abandon is not None:
                    abandon()
        process._target = None
        process._resume(self)


class Condition(Event):
    """Wait for a boolean combination of events.

    The condition's value is a dict mapping each *triggered* constituent
    event to its value, in trigger order.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")

        if not self._events or self._evaluate(self._events, 0):
            self.succeed(self._collect())
            return

        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events count as having happened: a Timeout carries
        # its value from construction but has not occurred until its callbacks
        # ran (callbacks is None).
        return {e: e._value for e in self._events if e.callbacks is None and e.triggered}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            was_defused = event._defused
            event._defused = True
            self.fail(event._value)
            if was_defused:
                # A deliberately-defused failure (e.g. a killed task whose
                # killer already acknowledged it) must not resurface as an
                # unhandled crash through a condition nobody awaits anymore.
                self._defused = True
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires once every constituent event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= len(events), events)


class AnyOf(Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda events, count: count >= 1 and len(events) > 0, events)
