"""A deterministic discrete-event simulation kernel.

Public surface::

    env = Environment()
    def proc(env):
        yield env.timeout(1.0)
        return "done"
    p = env.process(proc(env))
    env.run()           # or env.run(until=10), env.run(until=p)

Processes are generator coroutines yielding :class:`Event` objects; see
:mod:`repro.simulation.events` for composition (``&``/``|``) and
interruption, and :mod:`repro.simulation.resources` for queued resources.
"""

from .core import Environment
from .errors import EmptySchedule, Interrupt, SimulationError
from .events import AllOf, AnyOf, Condition, Event, Process, Timeout
from .monitor import EventLog, GaugeSet, TimeSeries
from .resources import LevelContainer, PriorityResource, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "EmptySchedule",
    "Environment",
    "Event",
    "EventLog",
    "GaugeSet",
    "Interrupt",
    "LevelContainer",
    "PriorityResource",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "Store",
    "TimeSeries",
    "Timeout",
]
