"""Calendar (bucketed) event queue for the discrete-event kernel.

A flat binary heap pays ``O(log n)`` tuple comparisons per push/pop where
*n* is the number of *pending* events — on a 10,000-node cluster that heap
holds tens of thousands of timers and every kernel event grinds through
~15 tuple comparisons each way. :class:`BucketQueue` splits the timeline
into fixed-width buckets: entries go into a small per-bucket heap, and the
buckets themselves are ordered by a heap of plain integers (cheap
comparisons, one entry per *occupied* bucket). Pops drain the earliest
bucket; pushes land in an existing bucket most of the time.

Two properties make this safe as a drop-in replacement for the flat heap:

* **Identical total order.** Entries are ``(time, priority, eid, event)``
  with a unique ``eid``, so the pop order is a total order determined by
  the key alone — any correct priority queue yields byte-identical runs.
  The Hypothesis property test (``tests/test_bucket_queue.py``) checks
  observational equivalence against ``heapq`` directly.
* **Monotonic pushes.** The kernel only schedules at ``now + delay`` with
  ``delay >= 0``, so a push never lands in a bucket earlier than the one
  currently being drained. The bucket-order heap therefore never needs
  lazy deletion: a bucket index is pushed exactly once per occupancy
  episode and popped exactly when its bucket empties.

``cancel(eid)`` supports consumers that retire scheduled entries (the
heartbeat wheel suspends dead/drained nodes this way): cancelled entries
are skipped lazily at pop time, costing one set lookup per pop only while
cancellations are outstanding.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Optional

#: Entries are (time, priority, eid, payload) — compared left-to-right,
#: and eid is unique, so the payload never participates in a comparison.
Entry = Any

#: Times at or beyond this horizon (including ``inf``) share one overflow
#: bucket — ``int(inf // width)`` would raise, and entries that far out are
#: ordered correctly by the in-bucket heap anyway.
FAR_HORIZON = 1e18


class BucketQueue:
    """Min-queue over ``(time, priority, eid, payload)`` entries.

    ``width`` is the bucket span in simulated seconds. The default (0.25s)
    keeps per-bucket heaps shallow for heartbeat/RPC-dominated workloads;
    correctness does not depend on it, only constant factors do.
    """

    __slots__ = ("_width", "_buckets", "_order", "_len", "_cancelled")

    def __init__(self, width: float = 0.25) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        self._width = width
        self._buckets: dict[int, list[Entry]] = {}
        self._order: list[int] = []
        self._len = 0
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    @property
    def width(self) -> float:
        return self._width

    def push(self, entry: Entry) -> None:
        when = entry[0]
        if when < FAR_HORIZON:
            idx = int(when // self._width)
        else:
            idx = int(FAR_HORIZON // self._width) + 1
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [entry]
            heappush(self._order, idx)
        else:
            heappush(bucket, entry)
        self._len += 1

    def pop(self) -> Entry:
        """Remove and return the smallest live entry.

        Raises :class:`IndexError` when empty, like ``heappop``.
        """
        cancelled = self._cancelled
        while True:
            entry = self._pop_any()
            if not cancelled or entry[2] not in cancelled:
                return entry
            cancelled.discard(entry[2])

    def _pop_any(self) -> Entry:
        if not self._len:
            raise IndexError("pop from an empty BucketQueue")
        idx = self._order[0]
        bucket = self._buckets[idx]
        entry = heappop(bucket)
        if not bucket:
            heappop(self._order)
            del self._buckets[idx]
        self._len -= 1
        return entry

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live entry, or ``None`` when empty."""
        cancelled = self._cancelled
        while self._len:
            idx = self._order[0]
            entry = self._buckets[idx][0]
            if not cancelled or entry[2] not in cancelled:
                return entry[0]
            self._pop_any()
            cancelled.discard(entry[2])
        return None

    def stats(self) -> dict[str, int]:
        """Occupancy snapshot for the telemetry/bench kernel gauges.

        ``pending`` counts live + cancelled-but-unpopped entries (what the
        queue physically holds); ``occupied_buckets``/``max_bucket_depth``
        describe how they spread across the calendar — a ballooning depth
        means the bucket width no longer matches the workload's timer
        horizon; ``cancelled_outstanding`` is the lazy-tombstone backlog.
        """
        return {
            "pending": self._len,
            "occupied_buckets": len(self._buckets),
            "max_bucket_depth": max(
                (len(b) for b in self._buckets.values()), default=0),
            "cancelled_outstanding": len(self._cancelled),
        }

    def cancel(self, eid: int) -> None:
        """Retire the entry with ``eid`` (skipped lazily at pop time).

        The entry still occupies queue space until its turn comes up, but
        it is never returned. Cancelling an unknown/already-popped eid is
        a silent no-op — callers cancel by token without tracking whether
        the entry already fired.
        """
        self._cancelled.add(eid)
