"""Light-weight instrumentation for simulations.

The experiment harness uses these helpers to record time series (e.g.
containers in use per node) and one-off timestamped marks (e.g. "map 3
finished") without coupling model code to any output format.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, MutableSequence, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment


@dataclass
class Sample:
    time: float
    value: float


class TimeSeries:
    """An append-only (time, value) series with step-function queries."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def at(self, time: float) -> Optional[float]:
        """Step-function value at ``time`` (last sample at or before it)."""
        i = bisect.bisect_right(self.times, time)
        if i == 0:
            return None
        return self.values[i - 1]

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        """Mean of the step function from the first sample to ``until``."""
        if not self.times:
            return 0.0
        end = until if until is not None else self.times[-1]
        total = 0.0
        for i, value in enumerate(self.values):
            t0 = self.times[i]
            t1 = self.times[i + 1] if i + 1 < len(self.times) else end
            t1 = min(t1, end)
            if t1 > t0:
                total += value * (t1 - t0)
        span = end - self.times[0]
        return total / span if span > 0 else self.values[-1]


@dataclass
class Mark:
    time: float
    label: str
    data: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Timestamped marks emitted by model components during a run."""

    def __init__(self) -> None:
        self.marks: MutableSequence[Mark] = []

    def mark(self, time: float, label: str, **data: Any) -> None:
        self.marks.append(Mark(time, label, data))

    def bound(self, limit: int) -> None:
        """Cap retention at the most recent ``limit`` marks (ring buffer).

        One-shot figure runs keep every mark for post-run inspection; a
        long-lived replay cluster would otherwise accumulate a few marks
        per job forever. Idempotent; re-bounding keeps the newest marks.
        """
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.marks = deque(self.marks, maxlen=limit)

    def filter(self, label: str) -> list[Mark]:
        return [m for m in self.marks if m.label == label]

    def first(self, label: str) -> Optional[Mark]:
        for m in self.marks:
            if m.label == label:
                return m
        return None

    def last(self, label: str) -> Optional[Mark]:
        for m in reversed(self.marks):
            if m.label == label:
                return m
        return None

    def span(self, start_label: str, end_label: str) -> Optional[float]:
        """Elapsed time between the first ``start`` and last ``end`` mark."""
        start = self.first(start_label)
        end = self.last(end_label)
        if start is None or end is None:
            return None
        return end.time - start.time


class GaugeSet:
    """A named collection of :class:`TimeSeries` gauges."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.series: dict[str, TimeSeries] = {}

    def gauge(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def record(self, name: str, value: float) -> None:
        self.gauge(name).record(self.env.now, value)
