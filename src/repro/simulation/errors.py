"""Exception types used by the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at ``until``."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupting party may attach an arbitrary ``cause`` describing why
    the process was interrupted (e.g. "preempted", "job killed").
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]
