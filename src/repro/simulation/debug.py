"""Invariant checking for simulated clusters.

Attach an :class:`InvariantChecker` to a cluster before running and call
``assert_clean()`` after: every event pop re-verifies the physical
invariants (no link over-allocation, no negative accounting, no scheduling
onto dead nodes). Tests wrap whole scenarios with it so any future model
change that silently breaks conservation fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..simcluster import SimCluster

_TOL = 1e-6


@dataclass
class Violation:
    time: float
    what: str

    def __str__(self) -> str:
        return f"t={self.time:.3f}: {self.what}"


class InvariantChecker:
    """Event-granular physical-invariant verification for a SimCluster."""

    def __init__(self, cluster: "SimCluster", every_n_events: int = 1) -> None:
        if every_n_events < 1:
            raise ValueError("every_n_events must be >= 1")
        self.cluster = cluster
        self.every_n_events = every_n_events
        self.violations: list[Violation] = []
        self._counter = 0
        self._fabrics = self._collect_fabrics()
        cluster.env.tracers.append(self._on_event)

    def _collect_fabrics(self):
        fabrics = [self.cluster.network.fabric]
        for node in self.cluster.datanodes:
            fabrics.append(node.cpu._device.fabric)
            fabrics.append(node.disk._device.fabric)
        return fabrics

    # -- checks -----------------------------------------------------------------
    def _on_event(self, time: float, _event) -> None:
        self._counter += 1
        if self._counter % self.every_n_events:
            return
        self._check_fabrics(time)
        self._check_rm(time)

    def _check_fabrics(self, time: float) -> None:
        for fabric in self._fabrics:
            for link in fabric.links:
                used = sum(f.rate for f in fabric.active_flows if link in f.path)
                cap = fabric.capacity(link)
                if used > cap * (1 + _TOL):
                    self.violations.append(Violation(
                        time, f"link {link!r} over-allocated: {used:.4f} > {cap:.4f}"))
            for flow in fabric.active_flows:
                if flow.remaining < -_TOL:
                    self.violations.append(Violation(
                        time, f"flow {flow.label!r} negative remaining work"))
                if flow.cap is not None and flow.rate > flow.cap * (1 + _TOL):
                    self.violations.append(Violation(
                        time, f"flow {flow.label!r} exceeds its cap"))

    def _check_rm(self, time: float) -> None:
        for state in self.cluster.rm.nodes.values():
            if state.used_memory_mb < 0 or state.used_vcores < 0:
                self.violations.append(Violation(
                    time, f"node {state.node_id} negative accounting "
                          f"({state.used_memory_mb} MB / {state.used_vcores} vc)"))
            if state.used_memory_mb > state.capability.memory_mb:
                self.violations.append(Violation(
                    time, f"node {state.node_id} memory over-committed: "
                          f"{state.used_memory_mb} > {state.capability.memory_mb}"))
        for nm in self.cluster.node_managers:
            # Kill interrupts deliver within the failure instant; only a
            # *later* timestamp with containers still listed is a leak.
            if nm.failed and nm.running and time > nm.failed_at + _TOL:
                self.violations.append(Violation(
                    time, f"dead node {nm.node_id} still lists running containers"))

    # -- reporting -----------------------------------------------------------------
    def assert_clean(self, max_report: int = 5) -> None:
        if self.violations:
            shown = "\n".join(str(v) for v in self.violations[:max_report])
            raise AssertionError(
                f"{len(self.violations)} invariant violations; first "
                f"{min(max_report, len(self.violations))}:\n{shown}")

    def detach(self) -> None:
        try:
            self.cluster.env.tracers.remove(self._on_event)
        except ValueError:
            pass
