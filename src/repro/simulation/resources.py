"""Shared-resource primitives: counted resources, level containers, stores.

These model mutual exclusion and queueing (e.g. a container slot on a
NodeManager, an RPC handler pool). Continuous *rate-shared* devices (disk
bandwidth, CPU) live in :mod:`repro.cluster.fairshare` because they need
processor-sharing semantics rather than queueing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from .errors import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment


class Request(Event):
    """Pending acquisition of one unit of a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ...critical section...
    """

    __slots__ = ("resource", "priority", "time")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.time = resource.env.now
        resource._request(self)

    def cancel(self) -> None:
        """Withdraw an unfulfilled request from the wait queue."""
        if not self.triggered:
            try:
                self.resource.queue.remove(self)
            except ValueError:
                pass

    #: Called by the kernel when an interrupted process abandons this wait.
    abandon = cancel

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.triggered and self._ok:
            self.resource.release(self)
        else:
            self.cancel()


class Resource:
    """A counted resource with ``capacity`` units and a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []

    @property
    def count(self) -> int:
        """Units currently held."""
        return len(self.users)

    @property
    def available(self) -> int:
        return self.capacity - len(self.users)

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)

    def _request(self, req: Request) -> None:
        self.queue.append(req)
        self._sort_queue()
        self._dispatch()

    def _sort_queue(self) -> None:
        """FIFO resource: insertion order is already correct."""

    def release(self, req: Request) -> None:
        try:
            self.users.remove(req)
        except ValueError:
            raise SimulationError("releasing a request that does not hold the resource") from None
        self._dispatch()

    def _dispatch(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            req = self.queue.pop(0)
            self.users.append(req)
            req.succeed()


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-``priority`` first (FIFO ties)."""

    def _sort_queue(self) -> None:
        self.queue.sort(key=lambda r: (r.priority, r.time))


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "LevelContainer", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "LevelContainer", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount


class LevelContainer:
    """A continuous-level reservoir (e.g. a memory budget in bytes)."""

    def __init__(self, env: "Environment", capacity: float, init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._puts: list[ContainerPut] = []
        self._gets: list[ContainerGet] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        event = ContainerPut(self, amount)
        self._puts.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> ContainerGet:
        event = ContainerGet(self, amount)
        self._gets.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts and self._level + self._puts[0].amount <= self.capacity:
                event = self._puts.pop(0)
                self._level += event.amount
                event.succeed()
                progressed = True
            if self._gets and self._level >= self._gets[0].amount:
                event = self._gets.pop(0)
                self._level -= event.amount
                event.succeed()
                progressed = True


class StorePut(Event):
    __slots__ = ("item", "store")

    def __init__(self, env: "Environment", item: Any,
                 store: Optional["Store"] = None) -> None:
        super().__init__(env)
        self.item = item
        self.store = store

    def abandon(self) -> None:
        """Withdraw an unfulfilled put (interrupted waiter)."""
        if self.store is not None and not self.triggered:
            try:
                self.store._puts.remove(self)
            except ValueError:
                pass


class StoreGet(Event):
    __slots__ = ("filter", "store")

    def __init__(self, env: "Environment", filter: Optional[Any] = None,
                 store: Optional["Store"] = None) -> None:
        super().__init__(env)
        self.filter = filter
        self.store = store

    def abandon(self) -> None:
        """Withdraw an unfulfilled get so it cannot swallow future items."""
        if self.store is not None and not self.triggered:
            try:
                self.store._gets.remove(self)
            except ValueError:
                pass


class Store:
    """An unbounded-or-bounded FIFO buffer of Python objects.

    ``get(filter=fn)`` retrieves the first item for which ``fn(item)`` is
    true (filter-store semantics), which the YARN layer uses to match
    heartbeat responses to specific applications.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._puts: list[StorePut] = []
        self._gets: list[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        event = StorePut(self.env, item, store=self)
        self._puts.append(event)
        self._dispatch()
        return event

    def get(self, filter: Optional[Any] = None) -> StoreGet:
        event = StoreGet(self.env, filter, store=self)
        self._gets.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        # Admit queued puts while there is room.
        while self._puts and len(self.items) < self.capacity:
            put = self._puts.pop(0)
            self.items.append(put.item)
            put.succeed()
        # Serve getters in order; a filtered getter only blocks itself.
        served = True
        while served:
            served = False
            for get in list(self._gets):
                index = None
                if get.filter is None:
                    if self.items:
                        index = 0
                else:
                    for i, item in enumerate(self.items):
                        if get.filter(item):
                            index = i
                            break
                if index is not None:
                    item = self.items.pop(index)
                    self._gets.remove(get)
                    get.succeed(item)
                    served = True
            # Room may have been freed for queued puts.
            while self._puts and len(self.items) < self.capacity:
                put = self._puts.pop(0)
                self.items.append(put.item)
                put.succeed()
