"""Self-optimizing mode selection from run history (the ``auto`` mode).

The paper's decision maker is analytic: Eq. 1–3 predict D+ vs U+ from
profiled quantities. This package closes the loop — a durable
:class:`RunHistoryStore` remembers how each job *signature* actually
performed per mode, a :class:`HistoryEstimator` turns those records into
EWMA/percentile service-time estimates, and an :class:`AutoModePicker`
chooses per job among stock / D+ / U+ / uber (optionally speculation):
analytically while cold, explore-then-commit once a store is attached.

Enabled via :class:`repro.config.TunerConfig` (``HadoopConfig.tuner``);
``None`` — the default — leaves every legacy code path byte-identical.
"""

from .estimator import HistoryEstimator
from .picker import (SOURCE_ANALYTIC, SOURCE_EXPLORE, SOURCE_LEARNED,
                     AutoDecision, AutoModePicker, run_auto_job,
                     template_inputs)
from .regret import RegretReport, RegretRound, run_regret, static_baselines
from .store import (OUTCOME_FAILED, OUTCOME_KILLED, OUTCOME_SUCCESS,
                    PHASE_FIELDS, RunHistoryStore, RunRecord, phase_means,
                    record_from_result)

__all__ = [
    "AutoDecision", "AutoModePicker", "HistoryEstimator",
    "OUTCOME_FAILED", "OUTCOME_KILLED", "OUTCOME_SUCCESS", "PHASE_FIELDS",
    "RegretReport", "RegretRound", "RunHistoryStore", "RunRecord",
    "SOURCE_ANALYTIC", "SOURCE_EXPLORE", "SOURCE_LEARNED",
    "phase_means", "record_from_result", "run_auto_job", "run_regret",
    "static_baselines", "template_inputs",
]
