"""Learned service-time estimates over a :class:`RunHistoryStore`.

Two views per ``(signature, mode)`` cell, both computed by replaying the
cell's bounded ring (at most ``ring_size`` records, so every query is
O(ring) with O(1) memory):

* **EWMA** — the headline estimate the picker compares, same recency
  semantics as :class:`repro.serving.slo.SizeEstimator` and RushTI's
  duration predictor: the first sample seeds the estimate, later samples
  fold in with weight ``alpha``. On a deterministic cluster repeated runs
  are identical, so the EWMA equals the truth after one sample.
* **Streaming percentile** — the tail view, tracked by the same P²
  machinery as the replay reports (:class:`repro.metrics
  .StreamingPercentile`): exact below five samples, constant-memory
  estimated beyond.

Only *successful* runs feed estimates — killed/AM-failed runs carry no
usable service time (the HFSP cold-start fix applies the same rule to the
scheduler's training phase). Estimates for one signature depend only on
that signature's own records, so interleaving other signatures' runs in
the store never moves them (the permutation-invariance property the test
suite checks); the plain mean is additionally invariant under reordering
within the cell.
"""

from __future__ import annotations

from typing import Optional

from ..metrics import StreamingPercentile
from .store import OUTCOME_SUCCESS, RunHistoryStore


class HistoryEstimator:
    """EWMA + streaming-percentile estimates from recorded runs."""

    def __init__(self, store: RunHistoryStore, alpha: float = 0.4,
                 percentile: float = 95.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < percentile < 100.0:
            raise ValueError("percentile must be in (0, 100)")
        self.store = store
        self.alpha = alpha
        self.percentile = percentile

    def _successes(self, signature: str, mode: str) -> list[float]:
        return [r.elapsed_s for r in
                self.store.runs(signature, mode, outcome=OUTCOME_SUCCESS)]

    def samples(self, signature: str, mode: str) -> int:
        """Successful runs retained for the cell (killed/failed excluded)."""
        return len(self._successes(signature, mode))

    def estimate(self, signature: str, mode: str) -> Optional[float]:
        """EWMA service-time estimate; ``None`` until a success lands."""
        values = self._successes(signature, mode)
        if not values:
            return None
        acc = values[0]
        for value in values[1:]:
            acc = self.alpha * value + (1.0 - self.alpha) * acc
        return acc

    def mean(self, signature: str, mode: str) -> Optional[float]:
        """Plain mean (order-invariant; what HFSP warm-start consumes)."""
        values = self._successes(signature, mode)
        return sum(values) / len(values) if values else None

    def tail(self, signature: str, mode: str) -> Optional[float]:
        """P² estimate of ``percentile`` over the cell's successes."""
        values = self._successes(signature, mode)
        if not values:
            return None
        acc = StreamingPercentile(self.percentile)
        for value in values:
            acc.add(value)
        return acc.value

    def best(self, signature: str, candidates: tuple) -> Optional[str]:
        """Argmin EWMA among candidates with data (ties: candidate order)."""
        scored = [(self.estimate(signature, mode), idx, mode)
                  for idx, mode in enumerate(candidates)]
        scored = [(est, idx, mode) for est, idx, mode in scored
                  if est is not None]
        if not scored:
            return None
        return min(scored)[2]

    def report(self, signature: str) -> dict:
        """JSON-stable per-mode summary of one signature."""
        out = {}
        for mode in self.store.modes(signature):
            n = self.samples(signature, mode)
            if not n:
                continue
            out[mode] = {
                "samples": n,
                "ewma_s": round(self.estimate(signature, mode), 6),
                "mean_s": round(self.mean(signature, mode), 6),
                f"p{self.percentile:g}_s": round(self.tail(signature, mode), 6),
            }
        return out
