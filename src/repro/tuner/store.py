"""Durable per-job-signature run history (the tuner's memory).

RushTI keeps a tiny SQLite table of past task durations and orders future
work by EWMA estimates learned from it; HFSP trains per-signature size
stats from completed runs. :class:`RunHistoryStore` is that idea for
MRapid's *mode* decision: every finished run is recorded under its
``(signature, mode)`` cell — elapsed service time, AM overhead, the mean
per-map phase breakdown (the same sub-phase vocabulary as
:class:`repro.history.PhaseBreakdown`), and the outcome — so the
:class:`~repro.tuner.estimator.HistoryEstimator` can answer "how long does
a ``scan`` take under U+ on this cluster?" from measurements instead of
the static Eq. 1–3 model.

Three backends share one API, selected by path:

* SQLite (any other path) — the durable default; WAL journaling plus a
  busy timeout make two replay processes sharing one file safe, and each
  ``record`` is its own transaction so a crash never corrupts the ring.
* JSON (``*.json``) — a fallback for environments without the ``sqlite3``
  stdlib module: read-merge-write under an exclusive ``.lock`` file,
  written atomically (tmp + rename) so readers never see a torn file.
* memory (``":memory:"`` or ``None``) — learning without persistence.

The store is schema-versioned (``SCHEMA_VERSION``): opening a v0 JSON
file (the flat ``{"version": 0, "history": [...]}`` layout) migrates it
in place; opening a file stamped *newer* than this code refuses loudly
rather than guessing. Every ``(signature, mode)`` cell is a bounded ring:
only the ``ring_size`` most recent runs are retained, so a history file
fed by months of replays stays O(signatures × modes × ring_size).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..mapreduce.spec import JobResult

try:  # the container may lack the sqlite3 stdlib extension; gate, not crash
    import sqlite3
except ImportError:  # pragma: no cover - exercised only on minimal builds
    sqlite3 = None  # type: ignore[assignment]

#: Run outcomes the store accepts (mirrors the replay driver's accounting).
OUTCOME_SUCCESS = "success"
OUTCOME_KILLED = "killed"
OUTCOME_FAILED = "failed"
OUTCOMES = (OUTCOME_SUCCESS, OUTCOME_KILLED, OUTCOME_FAILED)

#: Phase keys persisted per run (mean seconds per finished map task).
PHASE_FIELDS = ("wait", "launch", "setup", "read", "compute", "spill",
                "merge", "shuffle", "write")

_LOCK_TIMEOUT_S = 30.0
_LOCK_POLL_S = 0.01


@dataclass(frozen=True)
class RunRecord:
    """One completed (or aborted) run of a job signature under one mode."""

    signature: str
    mode: str
    elapsed_s: float
    outcome: str = OUTCOME_SUCCESS
    input_mb: float = 0.0
    am_overhead_s: float = 0.0
    phases: Mapping[str, float] = field(default_factory=dict)
    finished_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.signature or not self.mode:
            raise ValueError("signature and mode must be non-empty")
        if self.outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {self.outcome!r}; "
                             f"use one of {OUTCOMES}")
        if self.elapsed_s < 0:
            raise ValueError("elapsed_s cannot be negative")

    @property
    def success(self) -> bool:
        return self.outcome == OUTCOME_SUCCESS

    def to_dict(self) -> dict:
        return {
            "elapsed_s": round(self.elapsed_s, 9),
            "outcome": self.outcome,
            "input_mb": round(self.input_mb, 9),
            "am_overhead_s": round(self.am_overhead_s, 9),
            "phases": {k: round(float(v), 9)
                       for k, v in sorted(self.phases.items())},
            "finished_at": round(self.finished_at, 9),
        }


def phase_means(result: "JobResult") -> dict[str, float]:
    """Mean seconds per map sub-phase of one result (finished maps only)."""
    finished = [m for m in result.maps if m.finish_time > 0]
    if not finished:
        return {}
    n = len(finished)
    return {name: sum(getattr(m.phases, name) for m in finished) / n
            for name in PHASE_FIELDS}


def record_from_result(result: "JobResult", signature: str, mode: str,
                       input_mb: float = 0.0,
                       finished_at: Optional[float] = None) -> RunRecord:
    """Harvest a :class:`RunRecord` from a finished :class:`JobResult`.

    ``mode`` is the *tuner candidate* label ("stock"/"dplus"/...), not the
    result's concrete mode string — the store learns per decision arm.
    """
    if result.killed:
        outcome = OUTCOME_KILLED
    elif result.failed:
        outcome = OUTCOME_FAILED
    else:
        outcome = OUTCOME_SUCCESS
    return RunRecord(
        signature=signature, mode=mode,
        elapsed_s=max(0.0, result.elapsed), outcome=outcome,
        input_mb=input_mb, am_overhead_s=max(0.0, result.am_overhead),
        phases=phase_means(result),
        finished_at=(result.finish_time if finished_at is None
                     else finished_at))


class RunHistoryStore:
    """Schema-versioned, ring-bounded store of per-(signature, mode) runs."""

    SCHEMA_VERSION = 1

    def __init__(self, path: Optional[str] = None, ring_size: int = 64) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self.path = path
        self.ring_size = ring_size
        self._conn = None
        #: signature -> mode -> list[RunRecord] (oldest -> newest); the
        #: authoritative state for the memory/JSON backends and a cache the
        #: SQLite backend keeps in sync with its own writes.
        self._cells: dict[str, dict[str, list[RunRecord]]] = {}
        if path is None or path == ":memory:":
            self.backend = "memory"
        elif path.endswith(".json") or sqlite3 is None:
            self.backend = "json"
            self._load_json()
        else:
            self.backend = "sqlite"
            self._open_sqlite()

    # -- public API ----------------------------------------------------------
    def record(self, rec: RunRecord) -> None:
        """Append one run to its cell; evict beyond the ring bound."""
        if self.backend == "sqlite":
            self._sqlite_insert(rec)
        elif self.backend == "json":
            with self._json_lock():
                self._load_json_unlocked()
                self._cells_append(rec)
                self._write_json_unlocked()
            return
        self._cells_append(rec)

    def runs(self, signature: str, mode: Optional[str] = None,
             outcome: Optional[str] = None) -> list[RunRecord]:
        """Retained runs, oldest first, optionally filtered."""
        modes = self._cells.get(signature, {})
        if mode is not None:
            out = list(modes.get(mode, ()))
        else:
            out = [r for m in sorted(modes) for r in modes[m]]
        if outcome is not None:
            out = [r for r in out if r.outcome == outcome]
        return out

    def count(self, signature: str, mode: str,
              outcome: Optional[str] = None) -> int:
        return len(self.runs(signature, mode, outcome))

    def signatures(self) -> list[str]:
        return sorted(sig for sig, modes in self._cells.items()
                      if any(modes.values()))

    def modes(self, signature: str) -> list[str]:
        return sorted(m for m, rs in self._cells.get(signature, {}).items()
                      if rs)

    def __len__(self) -> int:
        return sum(len(rs) for modes in self._cells.values()
                   for rs in modes.values())

    def refresh(self) -> None:
        """Re-read the backing file (picks up other writers' records)."""
        if self.backend == "json":
            self._load_json()
        elif self.backend == "sqlite":
            self._load_sqlite()

    def to_dict(self) -> dict:
        """Canonical JSON-stable view (sorted keys, rounded floats)."""
        return {
            "schema_version": self.SCHEMA_VERSION,
            "ring_size": self.ring_size,
            "runs": {
                sig: {mode: [r.to_dict() for r in rs]
                      for mode, rs in sorted(modes.items()) if rs}
                for sig, modes in sorted(self._cells.items())
                if any(modes.values())
            },
        }

    def digest(self) -> str:
        """sha256 of the canonical view — the determinism-sanitizer hook."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RunHistoryStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- shared cell bookkeeping ----------------------------------------------
    def _cells_append(self, rec: RunRecord) -> None:
        cell = self._cells.setdefault(rec.signature, {}).setdefault(rec.mode, [])
        cell.append(rec)
        if len(cell) > self.ring_size:
            del cell[:len(cell) - self.ring_size]

    # -- SQLite backend -------------------------------------------------------
    def _open_sqlite(self) -> None:
        self._conn = sqlite3.connect(self.path, timeout=_LOCK_TIMEOUT_S)
        self._conn.execute("PRAGMA journal_mode=WAL").close()
        with self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta"
                " (key TEXT PRIMARY KEY, value TEXT)").close()
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS runs ("
                " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
                " signature TEXT NOT NULL, mode TEXT NOT NULL,"
                " elapsed_s REAL NOT NULL, outcome TEXT NOT NULL,"
                " input_mb REAL NOT NULL, am_overhead_s REAL NOT NULL,"
                " phases TEXT NOT NULL, finished_at REAL NOT NULL)").close()
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS runs_cell"
                " ON runs(signature, mode, seq)").close()
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'").fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta VALUES ('schema_version', ?)",
                    (str(self.SCHEMA_VERSION),)).close()
            elif int(row[0]) > self.SCHEMA_VERSION:
                raise ValueError(
                    f"history store {self.path!r} is schema v{row[0]}, newer "
                    f"than this code (v{self.SCHEMA_VERSION}); refusing to "
                    f"write")
            elif int(row[0]) < self.SCHEMA_VERSION:
                # v0 predates the versioned layout; same table shape, so
                # migration is a stamp (the JSON backend carries the real
                # layout migration).
                self._conn.execute(
                    "UPDATE meta SET value=? WHERE key='schema_version'",
                    (str(self.SCHEMA_VERSION),)).close()
        self._load_sqlite()

    def _load_sqlite(self) -> None:
        self._cells = {}
        rows = self._conn.execute(
            "SELECT signature, mode, elapsed_s, outcome, input_mb,"
            " am_overhead_s, phases, finished_at FROM runs ORDER BY seq")
        for sig, mode, elapsed, outcome, input_mb, am_ovh, phases, fin in rows:
            self._cells_append(RunRecord(
                signature=sig, mode=mode, elapsed_s=elapsed, outcome=outcome,
                input_mb=input_mb, am_overhead_s=am_ovh,
                phases=json.loads(phases), finished_at=fin))

    def _sqlite_insert(self, rec: RunRecord) -> None:
        # One transaction per record: insert + ring eviction. The busy
        # timeout on the connection serializes concurrent writers; the
        # explicit retry covers the rare lock surfaced as an exception.
        for attempt in range(8):
            try:
                with self._conn:
                    self._conn.execute(
                        "INSERT INTO runs (signature, mode, elapsed_s,"
                        " outcome, input_mb, am_overhead_s, phases,"
                        " finished_at) VALUES (?,?,?,?,?,?,?,?)",
                        (rec.signature, rec.mode, rec.elapsed_s, rec.outcome,
                         rec.input_mb, rec.am_overhead_s,
                         json.dumps({k: float(v) for k, v
                                     in sorted(rec.phases.items())}),
                         rec.finished_at)).close()
                    self._conn.execute(
                        "DELETE FROM runs WHERE signature=? AND mode=? AND"
                        " seq NOT IN (SELECT seq FROM runs WHERE signature=?"
                        " AND mode=? ORDER BY seq DESC LIMIT ?)",
                        (rec.signature, rec.mode, rec.signature, rec.mode,
                         self.ring_size)).close()
                return
            except sqlite3.OperationalError:
                if attempt == 7:
                    raise
                time.sleep(_LOCK_POLL_S * (attempt + 1))

    # -- JSON backend ---------------------------------------------------------
    def _lock_path(self) -> str:
        return self.path + ".lock"

    def _json_lock(self):
        store = self

        class _Lock:
            def __enter__(self):
                deadline = time.monotonic() + _LOCK_TIMEOUT_S
                while True:
                    try:
                        self.fd = os.open(store._lock_path(),
                                          os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                        return self
                    except FileExistsError:
                        if time.monotonic() > deadline:
                            raise TimeoutError(
                                f"history store lock {store._lock_path()!r} "
                                f"held too long (stale lock?)")
                        time.sleep(_LOCK_POLL_S)

            def __exit__(self, *_exc):
                os.close(self.fd)
                os.unlink(store._lock_path())

        return _Lock()

    def _load_json(self) -> None:
        if not os.path.exists(self.path):
            self._cells = {}
            return
        with self._json_lock():
            self._load_json_unlocked()
            # A v0 file is rewritten in the v1 layout immediately so every
            # later read (including other processes') sees one schema.
            if self._migrated_v0:
                self._write_json_unlocked()

    def _load_json_unlocked(self) -> None:
        self._cells = {}
        self._migrated_v0 = False
        if not os.path.exists(self.path):
            return
        with open(self.path) as f:
            raw = f.read()
        if not raw.strip():
            return
        data = json.loads(raw)
        version = int(data.get("schema_version", data.get("version", 0)))
        if version > self.SCHEMA_VERSION:
            raise ValueError(
                f"history store {self.path!r} is schema v{version}, newer "
                f"than this code (v{self.SCHEMA_VERSION}); refusing to write")
        if version < 1:
            # v0: a flat list of {"signature", "mode", "elapsed_s", ...}
            # rows with no outcome/phase columns; treat every row as a
            # successful run with an empty phase map.
            for row in data.get("history", []):
                self._cells_append(RunRecord(
                    signature=row["signature"], mode=row["mode"],
                    elapsed_s=float(row["elapsed_s"]),
                    outcome=OUTCOME_SUCCESS,
                    input_mb=float(row.get("input_mb", 0.0)),
                    am_overhead_s=float(row.get("am_overhead_s", 0.0)),
                    phases={},
                    finished_at=float(row.get("finished_at", 0.0))))
            self._migrated_v0 = True
            return
        for sig, modes in data.get("runs", {}).items():
            for mode, rows in modes.items():
                for row in rows:
                    self._cells_append(RunRecord(
                        signature=sig, mode=mode,
                        elapsed_s=float(row["elapsed_s"]),
                        outcome=row.get("outcome", OUTCOME_SUCCESS),
                        input_mb=float(row.get("input_mb", 0.0)),
                        am_overhead_s=float(row.get("am_overhead_s", 0.0)),
                        phases=row.get("phases", {}),
                        finished_at=float(row.get("finished_at", 0.0))))

    def _write_json_unlocked(self) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(self.to_dict(), f, sort_keys=True, indent=1)
        os.replace(tmp, self.path)

    _migrated_v0 = False
