"""Oracle-regret harness for the ``auto`` mode (Figure A1's engine).

The differential test the issue's acceptance criteria pin: run every
*static* mode of one job template on a fresh idle cluster to learn the
per-signature **oracle** (the fastest static choice — on a deterministic
simulator one run per mode is the truth), then replay the same template
``rounds`` times through the learning :class:`~repro.tuner.picker
.AutoModePicker` and track two regrets per round:

* **actual regret** — this round's elapsed minus the oracle's seconds.
  Non-zero during the exploration sweep (the picker must pay to measure
  each candidate once), zero afterwards.
* **exploit regret** — regret of the mode the picker would *commit to*
  after this round's observation (argmin EWMA over sampled candidates).
  This is a min over a growing sample set against fixed measurements, so
  it is monotonically non-increasing and reaches exactly zero once the
  oracle mode has been sampled.

Everything runs on fresh idle clusters with a fixed seed, so repeated
invocations are byte-identical and the report can be snapshot-gated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..config import HadoopConfig, TunerConfig
from .picker import AutoModePicker, run_auto_job
from .store import RunHistoryStore

if TYPE_CHECKING:  # pragma: no cover
    from ..config import ClusterSpec
    from ..trace import JobTemplate


def _fresh_cluster(spec: "ClusterSpec", conf: Optional[HadoopConfig],
                   seed: int):
    # Any non-stock strategy attaches the SubmissionFramework the auto
    # dispatcher needs for its dplus/uplus/speculative arms.
    from ..trace import STRATEGY_DPLUS, build_trace_cluster

    return build_trace_cluster(spec, strategy=STRATEGY_DPLUS, conf=conf,
                               seed=seed)


def _job_spec(cluster, template: "JobTemplate"):
    from ..mapreduce.spec import SimJobSpec

    paths = cluster.load_input_files(f"/regret/{template.name}",
                                     template.num_files, template.file_mb)
    return SimJobSpec(template.name, tuple(paths), template.profile,
                      signature=template.name)


def static_baselines(spec: "ClusterSpec", template: "JobTemplate",
                     candidates: tuple = TunerConfig.candidates,
                     conf: Optional[HadoopConfig] = None,
                     seed: int = 7) -> dict[str, float]:
    """Idle-cluster elapsed seconds per static mode (the oracle's table)."""
    from ..core.ampool import MODE_DPLUS, MODE_UPLUS
    from ..core.speculation import SpeculativeExecutor
    from ..mapreduce.client import MODE_AUTO, MODE_UBER, JobClient

    out: dict[str, float] = {}
    for mode in candidates:
        cluster = _fresh_cluster(spec, conf, seed)
        job = _job_spec(cluster, template)
        if mode == "stock":
            result = JobClient(cluster).run(job, MODE_AUTO)
        elif mode == "uber":
            result = JobClient(cluster).run(job, MODE_UBER)
        elif mode == "speculative":
            result = SpeculativeExecutor(cluster.mrapid_framework).run(job).winner
        elif mode in ("dplus", "uplus"):
            result = cluster.mrapid_framework.run(
                job, MODE_DPLUS if mode == "dplus" else MODE_UPLUS)
        else:
            raise ValueError(f"unknown tuner candidate {mode!r}")
        out[mode] = result.elapsed
    return out


@dataclass(frozen=True)
class RegretRound:
    """One auto replay round of the template."""

    index: int
    mode: str                 # what auto actually ran
    source: str               # analytic | explore | learned
    elapsed_s: float
    regret_s: float           # elapsed - oracle
    exploit_mode: str         # committed choice after this observation
    exploit_regret_s: float   # static[exploit_mode] - oracle
    cumulative_regret_s: float

    def to_dict(self) -> dict:
        return {"index": self.index, "mode": self.mode, "source": self.source,
                "elapsed_s": round(self.elapsed_s, 6),
                "regret_s": round(self.regret_s, 6),
                "exploit_mode": self.exploit_mode,
                "exploit_regret_s": round(self.exploit_regret_s, 6),
                "cumulative_regret_s": round(self.cumulative_regret_s, 6)}


@dataclass
class RegretReport:
    """Static oracle table plus the auto picker's per-round trajectory."""

    signature: str
    static_s: dict[str, float]
    oracle_mode: str
    oracle_s: float
    rounds: list[RegretRound] = field(default_factory=list)

    @property
    def cumulative_regret_s(self) -> float:
        return self.rounds[-1].cumulative_regret_s if self.rounds else 0.0

    def exploit_regrets(self) -> list[float]:
        return [r.exploit_regret_s for r in self.rounds]

    def trained_rounds(self, training_window: int) -> list[RegretRound]:
        return self.rounds[training_window:]

    def static_cumulative_regret_s(self, mode: str) -> float:
        """Cumulative regret of always running ``mode`` for the same rounds."""
        return (self.static_s[mode] - self.oracle_s) * len(self.rounds)

    def to_dict(self) -> dict:
        return {
            "signature": self.signature,
            "static_s": {m: round(v, 6)
                         for m, v in sorted(self.static_s.items())},
            "oracle_mode": self.oracle_mode,
            "oracle_s": round(self.oracle_s, 6),
            "cumulative_regret_s": round(self.cumulative_regret_s, 6),
            "rounds": [r.to_dict() for r in self.rounds],
        }


def run_regret(spec: "ClusterSpec", template: "JobTemplate", *,
               rounds: int = 8, tuner: Optional[TunerConfig] = None,
               conf: Optional[HadoopConfig] = None, seed: int = 7,
               store: Optional[RunHistoryStore] = None) -> RegretReport:
    """Measure the oracle table, then let ``auto`` learn the template.

    Each round runs on a fresh idle cluster (same seed), so a mode's
    elapsed never varies between the baseline table and the auto rounds —
    the regret numbers isolate *decision* quality from cluster noise.
    Pass ``store`` to persist/extend history across calls (the CI smoke
    does); by default learning happens in an in-memory store.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    tuner_conf = tuner if tuner is not None else TunerConfig()
    static = static_baselines(spec, template, tuner_conf.candidates,
                              conf=conf, seed=seed)
    oracle_mode = min(tuner_conf.candidates, key=lambda m: (static[m],
                      tuner_conf.candidates.index(m)))
    report = RegretReport(signature=template.name, static_s=static,
                          oracle_mode=oracle_mode,
                          oracle_s=static[oracle_mode])

    own_store = store is None
    history = store if store is not None else RunHistoryStore(None)
    picker = AutoModePicker(history, tuner_conf)
    try:
        cumulative = 0.0
        for index in range(rounds):
            cluster = _fresh_cluster(spec, conf, seed)
            job = _job_spec(cluster, template)
            result, decision = run_auto_job(
                cluster, job, picker,
                num_files=template.num_files, file_mb=template.file_mb)
            regret = result.elapsed - report.oracle_s
            cumulative += regret
            exploit = picker.estimator.best(template.name,
                                            tuner_conf.candidates)
            exploit = exploit if exploit is not None else decision.mode
            report.rounds.append(RegretRound(
                index=index, mode=decision.mode, source=decision.source,
                elapsed_s=result.elapsed, regret_s=regret,
                exploit_mode=exploit,
                exploit_regret_s=static.get(exploit, result.elapsed)
                - report.oracle_s,
                cumulative_regret_s=cumulative))
    finally:
        if own_store:
            history.close()
    return report
