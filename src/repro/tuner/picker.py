"""The ``auto`` mode picker: learned estimates with an analytic cold start.

Per arriving job the picker chooses among the tuner candidates —
``stock`` (plain client, Hadoop's uber-eligibility rule), ``dplus``,
``uplus``, ``uber``, optionally ``speculative`` — in three regimes:

* **analytic** — no store attached (``TunerConfig.history_db`` unset):
  the decision is *exactly* the paper's Eq. 1–3 comparison,
  :func:`repro.core.estimator.pick_mode`, decision for decision. This is
  the metamorphic baseline the regression gate pins.
* **explore** — a store is attached but some candidate has fewer than
  ``train_runs`` successful samples for this signature: run the
  least-sampled candidate, breaking ties by *ascending analytic
  estimate* (then candidate order). Exploring the analytically-best arm
  first means the committed-policy regret never rises while the sweep
  fills in — the monotonicity the oracle-regret suite asserts.
* **learned** — every candidate trained: argmin of the
  :class:`~repro.tuner.estimator.HistoryEstimator` EWMA (ties by
  candidate order). On a deterministic cluster this is the per-signature
  oracle after one sweep.

Everything is deterministic — no RNG, no wall clock — so replays with a
tuner are as snapshot-stable as replays without one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

from ..config import TunerConfig
from ..core.estimator import EstimatorInputs, analytic_estimates, pick_mode
from .estimator import HistoryEstimator
from .store import OUTCOME_SUCCESS, RunHistoryStore, RunRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..simcluster import SimCluster
    from ..workloads.base import WorkloadProfile

#: Decision provenance labels (surfaced in reports and per-job rows).
SOURCE_ANALYTIC = "analytic"
SOURCE_EXPLORE = "explore"
SOURCE_LEARNED = "learned"


@dataclass(frozen=True)
class AutoDecision:
    """One per-job mode choice and the estimates that produced it."""

    mode: str
    source: str
    #: Candidate -> predicted seconds: analytic (Eq. 1–3) in the analytic
    #: and explore regimes, learned EWMAs once trained.
    estimates: Mapping[str, float] = field(default_factory=dict)


def template_inputs(cluster: "SimCluster", num_files: int, file_mb: float,
                    profile: "WorkloadProfile") -> EstimatorInputs:
    """Table I inputs for a not-yet-run job, from its template.

    The same construction the speculation profiler uses once maps finish
    (:func:`repro.core.profiler.estimator_inputs_from`), but fed from the
    template's declared sizes instead of measurements — what the decision
    maker can know *before* launching anything. ``n_c`` is the cluster's
    free-container count at decision time, so the analytic choice shifts
    with load exactly like the paper's §III-C threshold discussion.
    """
    from ..core.profiler import ProfileSnapshot, estimator_inputs_from

    snapshot = ProfileSnapshot(
        maps_total=max(1, num_files), maps_finished=max(1, num_files),
        avg_map_compute_s=profile.map_cpu_s(file_mb),
        avg_input_mb=file_mb,
        avg_output_mb=profile.map_output_mb(file_mb))
    framework = getattr(cluster, "mrapid_framework", None)
    maps_per_vcore = (framework.mrapid.maps_per_vcore
                      if framework is not None else 1)
    n_u_m = max(1, cluster.spec.instance.cores * maps_per_vcore)
    return estimator_inputs_from(cluster, snapshot, n_u_m=n_u_m)


class AutoModePicker:
    """Explore-then-exploit mode choice over a run-history store."""

    def __init__(self, store: Optional[RunHistoryStore] = None,
                 config: Optional[TunerConfig] = None) -> None:
        self.config = config if config is not None else TunerConfig()
        self.store = store
        self.estimator = (HistoryEstimator(store, alpha=self.config.ewma_alpha,
                                           percentile=self.config.percentile)
                          if store is not None else None)
        #: Decision provenance counters (report/CI smoke surface).
        self.sources: dict[str, int] = {}

    def decide(self, signature: str, inputs: EstimatorInputs) -> AutoDecision:
        analytic = analytic_estimates(inputs)
        if self.store is None:
            # Byte-for-byte the Eq. 1–3 decision: same comparison, same
            # tie-break ("uplus" iff t_u <= t_d) — the metamorphic gate.
            decision = AutoDecision(pick_mode(inputs), SOURCE_ANALYTIC,
                                    analytic)
        else:
            decision = self._decide_learning(signature, analytic)
        self.sources[decision.source] = self.sources.get(decision.source, 0) + 1
        return decision

    def _decide_learning(self, signature: str,
                         analytic: Mapping[str, float]) -> AutoDecision:
        candidates = self.config.candidates
        counts = {m: self.estimator.samples(signature, m) for m in candidates}
        untrained = [m for m in candidates
                     if counts[m] < self.config.train_runs]
        if untrained:
            mode = min(untrained,
                       key=lambda m: (counts[m],
                                      analytic.get(m, float("inf")),
                                      candidates.index(m)))
            return AutoDecision(mode, SOURCE_EXPLORE, dict(analytic))
        learned = {m: self.estimator.estimate(signature, m)
                   for m in candidates}
        mode = min(candidates,
                   key=lambda m: (learned[m], candidates.index(m)))
        return AutoDecision(mode, SOURCE_LEARNED, learned)

    def exploit_mode(self, signature: str,
                     inputs: EstimatorInputs) -> str:
        """The mode the picker would *commit to* now, exploration aside.

        With no samples yet this is the analytic choice; with any, the
        argmin EWMA over sampled candidates. The regret suite tracks this
        policy's regret, which is non-increasing by construction (the
        sampled set only grows and measurements never change).
        """
        if self.store is not None:
            best = self.estimator.best(signature, self.config.candidates)
            if best is not None:
                return best
        return pick_mode(inputs)

    def observe(self, signature: str, mode: str, elapsed_s: float,
                outcome: str = OUTCOME_SUCCESS, *, input_mb: float = 0.0,
                am_overhead_s: float = 0.0,
                phases: Optional[Mapping[str, float]] = None,
                finished_at: float = 0.0) -> None:
        """Record one run into the store (no-op when learning is off)."""
        self.observe_record(RunRecord(
            signature=signature, mode=mode, elapsed_s=elapsed_s,
            outcome=outcome, input_mb=input_mb,
            am_overhead_s=am_overhead_s, phases=phases or {},
            finished_at=finished_at))

    def observe_record(self, record: RunRecord) -> None:
        """Record a pre-built :class:`RunRecord` (no-op when learning is off)."""
        if self.store is None:
            return
        self.store.record(record)

    def report(self) -> dict:
        """JSON-stable tuner section for :class:`repro.trace.LoadReport`."""
        out: dict = {"learning": self.store is not None,
                     "sources": {k: self.sources[k]
                                 for k in sorted(self.sources)}}
        if self.store is not None:
            out["store_records"] = len(self.store)
            out["store_signatures"] = self.store.signatures()
        return out


def run_auto_job(cluster: "SimCluster", spec, picker: AutoModePicker,
                 *, num_files: int, file_mb: float,
                 queue: Optional[str] = None):
    """Decide and run one job on an idle trace cluster; record the outcome.

    Returns ``(result, decision)``. The cluster must carry a
    ``mrapid_framework`` (build it with
    :func:`repro.trace.build_trace_cluster` and any non-stock strategy).
    Used by ``repro run --mode auto --history-db`` and the regret harness.
    """
    from ..core.ampool import MODE_DPLUS, MODE_UPLUS
    from ..core.speculation import SpeculativeExecutor
    from ..mapreduce.client import MODE_AUTO, MODE_UBER, JobClient
    from .store import record_from_result

    inputs = template_inputs(cluster, num_files, file_mb, spec.profile)
    decision = picker.decide(spec.signature, inputs)
    framework = getattr(cluster, "mrapid_framework", None)

    if decision.mode in ("stock", "uber") or framework is None:
        client = JobClient(cluster)
        mode = MODE_UBER if decision.mode == "uber" else MODE_AUTO
        result = client.run(spec, mode, queue=queue)
    elif decision.mode == "speculative":
        result = SpeculativeExecutor(framework).run(spec).winner
    else:
        mode = MODE_DPLUS if decision.mode == "dplus" else MODE_UPLUS
        result = framework.run(spec, mode)

    picker.observe_record(record_from_result(
        result, spec.signature, decision.mode,
        input_mb=num_files * file_mb, finished_at=cluster.env.now))
    return result, decision
