"""``repro.observe`` — distributed tracing and job profiling.

Not to be confused with :mod:`repro.trace` (workload-*trace* replay: bursty
job arrival streams). This package records *execution* traces: causal spans
with parent links emitted by the simulation kernel, YARN, the AMs, the task
bodies, the I/O fabric, and the fault injector, plus counters/histograms in
a :class:`MetricsRegistry`. On top of the raw spans sit

* :func:`to_trace_events` — a Chrome trace-event / Perfetto JSON exporter
  (open the file in https://ui.perfetto.dev);
* :func:`critical_path` / :func:`analyze_job` — sweep the span graph of a
  completed job and attribute every second of end-to-end latency to one of
  the paper's overhead classes (useful work takes precedence over waits);
* :func:`run_profiled` — run one job traced and return a
  :class:`ProfileReport` (breakdown + Gantt + Perfetto export), the engine
  behind ``python -m repro profile``.

Tracing is strictly opt-in: ``Environment.tracer`` is ``None`` by default
and every instrumentation hook is a single ``is not None`` check, so the
figure/bench paths are byte-identical with the subsystem present.
"""

from .critical_path import (
    OVERHEAD_CLASSES,
    CriticalPathReport,
    Segment,
    analyze_job,
    critical_path,
)
from .export import to_trace_events, validate_trace_events
from .profile import PROFILE_MODES, ProfileReport, run_profiled
from .tracer import Instant, MetricsRegistry, Span, Tracer, install_tracer

__all__ = [
    "OVERHEAD_CLASSES",
    "CriticalPathReport",
    "Instant",
    "MetricsRegistry",
    "PROFILE_MODES",
    "ProfileReport",
    "Segment",
    "Span",
    "Tracer",
    "analyze_job",
    "critical_path",
    "install_tracer",
    "run_profiled",
    "to_trace_events",
    "validate_trace_events",
]
