"""Run one job fully traced and report where its time went.

:func:`run_profiled` is the engine behind ``python -m repro profile``: build
a fresh cluster in the requested mode, :func:`install_tracer`, run one
paper-scale job, and return a :class:`ProfileReport` bundling the
:class:`JobResult`, the critical-path breakdown, and the live tracer (for
Perfetto export).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import HadoopConfig, MRapidConfig, a3_cluster
from ..core.submit import (
    build_mrapid_cluster,
    build_stock_cluster,
    run_short_job,
    run_stock_job,
)
from ..experiments.harness import (
    HADOOP_DIST,
    HADOOP_UBER,
    MRAPID_DPLUS,
    MRAPID_UPLUS,
)
from ..mapreduce.spec import JobResult
from .critical_path import OVERHEAD_CLASSES, CriticalPathReport, analyze_job
from .export import to_trace_events
from .tracer import Tracer, install_tracer

#: CLI mode spellings -> canonical series names (harness.ALL_MODES).
PROFILE_MODES = {
    "stock": HADOOP_DIST,
    "distributed": HADOOP_DIST,
    "uber": HADOOP_UBER,
    "dplus": MRAPID_DPLUS,
    "uplus": MRAPID_UPLUS,
}

_BAR_WIDTH = 30


@dataclass
class ProfileReport:
    """One traced job: result + attribution + the tracer that recorded it."""

    workload: str
    mode: str                     # canonical series name
    result: JobResult
    path: CriticalPathReport
    tracer: Tracer

    def to_perfetto(self) -> dict:
        """The run as a Perfetto-loadable trace-event object."""
        return to_trace_events(
            self.tracer, trace_name=f"{self.workload}-{self.mode}")

    def breakdown_dict(self) -> dict:
        """Machine-readable breakdown (``profile.breakdown.json``)."""
        return {
            "workload": self.workload,
            "mode": self.mode,
            "app_id": self.result.app_id,
            "elapsed": self.result.elapsed,
            "breakdown": self.path.to_dict(),
            "metrics": self.tracer.metrics.snapshot(),
        }

    def render(self, width: int = 72) -> str:
        """Human-readable breakdown table followed by the task Gantt."""
        from ..experiments.timeline import job_timeline

        fractions = self.path.fractions
        totals = self.path.totals
        lines = [
            f"profile: {self.workload} [{self.mode}] — "
            f"{self.path.elapsed:.2f}s end-to-end "
            f"(app {self.result.app_id})",
            "critical-path attribution:",
        ]
        for cls in OVERHEAD_CLASSES:
            frac = fractions[cls]
            bar = "█" * int(round(frac * _BAR_WIDTH))
            lines.append(f"  {cls:<16s} {totals[cls]:>8.2f}s  "
                         f"{frac * 100:>5.1f}%  {bar}")
        covered = sum(fractions.values())
        lines.append(f"  {'(sum)':<16s} {sum(totals.values()):>8.2f}s  "
                     f"{covered * 100:>5.1f}%")
        lines.append(
            f"framework overhead (non-compute fraction): "
            f"{self.path.non_compute_fraction * 100:.1f}%")
        lines.append("")
        lines.append(job_timeline(self.result, width=width))
        return "\n".join(lines)


def _spec_builder(workload: str, num_files: int, file_mb: float):
    # The module-level input dataclasses figures use; imported lazily so
    # repro.observe stays importable without the experiments package.
    from ..experiments.figures import pi_input, terasort_input, wordcount_input
    from ..workloads.terasort import rows_to_mb

    if workload == "wordcount":
        return wordcount_input(num_files, file_mb)
    if workload == "terasort":
        # Interpret the size knobs as total input, like Figure 10 does.
        rows = max(1, int(num_files * file_mb / rows_to_mb(1)))
        return terasort_input(rows, num_files=num_files)
    if workload == "pi":
        return pi_input(num_files * file_mb * 1e6, num_maps=num_files)
    raise ValueError(f"unknown workload {workload!r} "
                     "(expected wordcount, terasort, or pi)")


def run_profiled(workload: str = "wordcount", mode: str = "stock",
                 num_files: int = 4, file_mb: float = 10.0, nodes: int = 4,
                 seed: int = 7, conf: Optional[HadoopConfig] = None,
                 mrapid: Optional[MRapidConfig] = None) -> ProfileReport:
    """Run one paper-scale job with tracing on; return its profile.

    ``mode`` accepts the CLI spellings (``stock``/``distributed``, ``uber``,
    ``dplus``, ``uplus``) or a canonical series name. The cluster is the
    paper's 1 NN + ``nodes`` DN A3 topology, fresh per call, so profiles are
    deterministic and independent.
    """
    series = PROFILE_MODES.get(mode, mode)
    builder = _spec_builder(workload, num_files, file_mb)
    cluster_spec = a3_cluster(nodes)
    if series in (HADOOP_DIST, HADOOP_UBER):
        cluster = build_stock_cluster(cluster_spec, conf=conf, seed=seed)
        tracer = install_tracer(cluster)
        spec = builder(cluster)
        stock = "distributed" if series == HADOOP_DIST else "uber"
        result = run_stock_job(cluster, spec, stock)
    elif series in (MRAPID_DPLUS, MRAPID_UPLUS):
        cluster = build_mrapid_cluster(cluster_spec, conf=conf, mrapid=mrapid,
                                       seed=seed)
        tracer = install_tracer(cluster)
        spec = builder(cluster)
        short = "dplus" if series == MRAPID_DPLUS else "uplus"
        result = run_short_job(cluster, spec, short)
    else:
        raise ValueError(f"unknown mode {mode!r} "
                         f"(expected one of {sorted(PROFILE_MODES)})")
    path = analyze_job(tracer, app_id=result.app_id)
    return ProfileReport(workload, series, result, path, tracer)
