"""The span tracer and metrics registry.

A :class:`Tracer` collects three kinds of records from a simulated run:

* **spans** — named intervals ``[start, end]`` with a category, a process
  key (``node``, one Perfetto *pid* per cluster machine), a lane (``lane``,
  one Perfetto *tid* per container/daemon), optional parent links, and
  free-form args;
* **instants** — zero-duration marks (fault injections, scheduler grants);
* **metrics** — monotonic counters and value histograms in a
  :class:`MetricsRegistry` (kernel events dispatched, RM heartbeats served,
  scheduler grant queue delays, fabric flows completed, ...).

Spans come in two flavors. ``sync`` spans live on one lane and are properly
nested there (a task's ``read`` inside the task's root span) — they export
as Chrome trace-event ``B``/``E`` pairs. ``async`` spans may overlap freely
(concurrent fabric flows on one device) and export as ``b``/``e`` async
events.

The tracer is attached to a simulation by :func:`install_tracer`, which sets
``env.tracer`` and registers the kernel dispatch hook. Instrumentation sites
throughout the stack guard on ``env.tracer is not None`` — with no tracer
installed (the default everywhere, including every figure and benchmark
path) they cost one attribute read and change nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..simcluster import SimCluster
    from ..simulation.core import Environment

#: Process key for cluster-level activity not tied to one machine (the
#: client, the RM, the fault injector, job root spans).
CLUSTER = "cluster"

SYNC = "sync"
ASYNC = "async"


@dataclass
class Span:
    """One traced interval. ``end is None`` while the span is open."""

    sid: int
    name: str
    cat: str
    node: str              # process key (machine id, or CLUSTER)
    lane: str              # thread key (container / daemon / task lane)
    start: float
    end: Optional[float] = None
    parent: Optional[int] = None   # sid of the enclosing span, if recorded
    flavor: str = SYNC
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def covers(self, t: float, eps: float = 1e-9) -> bool:
        return self.end is not None and self.start <= t + eps and t <= self.end + eps


@dataclass
class Instant:
    """A zero-duration mark (rendered as a Perfetto instant event)."""

    name: str
    cat: str
    node: str
    lane: str
    ts: float
    args: dict[str, Any] = field(default_factory=dict)


class MetricsRegistry:
    """Counters and histograms keyed by name."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, list[float]] = {}

    def incr(self, name: str, by: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + by

    def observe(self, name: str, value: float) -> None:
        self.histograms.setdefault(name, []).append(float(value))

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def histogram_summary(self, name: str) -> dict[str, float]:
        values = self.histograms.get(name, [])
        if not values:
            return {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0, "sum": 0.0}
        total = sum(values)
        return {
            "count": len(values),
            "min": min(values),
            "max": max(values),
            "mean": total / len(values),
            "sum": total,
        }

    def snapshot(self) -> dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {name: self.histogram_summary(name)
                           for name in sorted(self.histograms)},
        }


class Tracer:
    """Collects spans, instants, and metrics from one simulated run."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.metrics = MetricsRegistry()
        self._next_sid = 1

    # -- span API -----------------------------------------------------------
    def begin(self, name: str, cat: str, node: str, lane: str,
              parent: Optional[Span] = None, **args: Any) -> Span:
        """Open a span now; close it with :meth:`end`."""
        span = Span(self._next_sid, name, cat, node, lane, self.env.now,
                    parent=parent.sid if parent is not None else None,
                    args=args)
        self._next_sid += 1
        self.spans.append(span)
        return span

    def end(self, span: Span) -> Span:
        if span.end is None:
            span.end = self.env.now
        return span

    def complete(self, name: str, cat: str, node: str, lane: str,
                 start: float, end: Optional[float] = None,
                 parent: Optional[Span] = None, **args: Any) -> Span:
        """Record a span retrospectively (``end`` defaults to now)."""
        span = Span(self._next_sid, name, cat, node, lane, start,
                    end=self.env.now if end is None else end,
                    parent=parent.sid if parent is not None else None,
                    args=args)
        self._next_sid += 1
        self.spans.append(span)
        return span

    def async_complete(self, name: str, cat: str, node: str, lane: str,
                       start: float, end: Optional[float] = None,
                       **args: Any) -> Span:
        """Record a possibly-overlapping span (fabric flows)."""
        span = self.complete(name, cat, node, lane, start, end, **args)
        span.flavor = ASYNC
        return span

    def instant(self, name: str, cat: str, node: str, lane: str,
                **args: Any) -> Instant:
        mark = Instant(name, cat, node, lane, self.env.now, args=args)
        self.instants.append(mark)
        return mark

    # -- views -------------------------------------------------------------
    def closed_spans(self) -> list[Span]:
        return [s for s in self.spans if s.end is not None]

    def spans_in(self, t0: float, t1: float) -> list[Span]:
        """Closed spans overlapping ``[t0, t1]``."""
        return [s for s in self.closed_spans() if s.end > t0 and s.start < t1]

    # -- kernel hook -------------------------------------------------------
    def attach_kernel(self) -> None:
        """Count event dispatches through the Environment's tracer hook."""
        counters = self.metrics.counters

        def on_event(_when: float, _event: Any) -> None:
            counters["kernel:events_dispatched"] = \
                counters.get("kernel:events_dispatched", 0.0) + 1.0

        self.env.tracers.append(on_event)


def install_tracer(cluster: "SimCluster", kernel_hook: bool = True) -> Tracer:
    """Create a tracer, attach it to ``cluster``'s environment, return it.

    After this every instrumentation site in the simulator (kernel, RM,
    scheduler, NMs, AMs, task bodies, fabric, fault injector) starts
    emitting into the returned tracer.
    """
    tracer = Tracer(cluster.env)
    cluster.env.tracer = tracer
    if kernel_hook:
        tracer.attach_kernel()
    return tracer
