"""Validate a trace-event JSON file from the command line.

CI's profile-smoke job runs::

    python -m repro.observe.validate out/profile.perfetto.json

which parses the file and applies :func:`validate_trace_events` (valid
structure, monotonic ``ts``, matched ``B``/``E`` and async pairs), exiting
non-zero with the problems listed when the trace would not load cleanly.
"""

from __future__ import annotations

import json
import sys

from .export import validate_trace_events


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.observe.validate <trace.json>",
              file=sys.stderr)
        return 2
    path = argv[0]
    try:
        with open(path, encoding="utf-8") as fh:
            obj = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: not readable JSON: {exc}", file=sys.stderr)
        return 1
    problems = validate_trace_events(obj)
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        return 1
    events = obj["traceEvents"]
    timed = sum(1 for ev in events if ev.get("ph") != "M")
    print(f"{path}: OK — {len(events)} events ({timed} timed), "
          "monotonic ts, balanced B/E")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
