"""Critical-path attribution over a completed job's span graph.

The analyzer answers the MRapid question — *where does a short job's time
go?* — by partitioning the whole ``[submit, finish]`` interval into
contiguous segments, each charged to one overhead class:

==================  ====================================================
class               charged spans
==================  ====================================================
``heartbeat_wait``  RM/NM/AM heartbeat rounds, allocation RPCs, slot and
                    resource-grant waits (cat ``wait``/``heartbeat``/
                    ``alloc``)
``container_launch``  NM container/JVM launch delays (cat ``launch``)
``am_startup``      client submit, AM init, task setup/commit bookkeeping
                    (cat ``submit``/``init``/``setup``/``commit``/``rpc``)
``read_compute``    useful work: input read + user map/reduce functions
``spill_merge``     map-side spills and merge passes
``shuffle``         reduce-side fetch
``write``           output write + replication
``other``           anything unclassified, and uninstrumented gaps
==================  ====================================================

The method is an elementary-interval sweep over the span set: at every
instant of the job window, the instant is charged to the highest-precedence
class with a span active there. Precedence encodes what is *binding* — if
any task is doing useful work the job is compute-bound at that instant, no
matter how many heartbeat timers are also ticking; only when nothing
productive overlaps does the instant fall through to launch, then AM
bookkeeping, then pure allocation/heartbeat waiting. (A naive backward walk
over span *ends* gets this wrong: the AM's 1 s heartbeat spans tile the
whole job and would swallow concurrent task phases.) Segments are maximal
and non-overlapping, so their durations sum to the job's elapsed time
exactly — the breakdown's fractions always add to ~1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .tracer import SYNC

if TYPE_CHECKING:  # pragma: no cover
    from .tracer import Span, Tracer

#: Attribution classes, in display order. Fractions over these sum to ~1.
OVERHEAD_CLASSES = (
    "heartbeat_wait",
    "container_launch",
    "am_startup",
    "read_compute",
    "spill_merge",
    "shuffle",
    "write",
    "other",
)

#: Classes that are *useful work* rather than framework overhead; the
#: paper's "overhead fraction" is 1 minus their share.
WORK_CLASSES = ("read_compute",)

#: Sweep precedence: productive activity dominates framework bookkeeping,
#: which dominates pure waiting. Index = priority (lower wins).
PRECEDENCE = (
    "read_compute",
    "spill_merge",
    "shuffle",
    "write",
    "container_launch",
    "am_startup",
    "heartbeat_wait",
    "other",
)

_CAT_CLASS = {
    "wait": "heartbeat_wait",
    "heartbeat": "heartbeat_wait",
    "alloc": "heartbeat_wait",
    "launch": "container_launch",
    "submit": "am_startup",
    "init": "am_startup",
    "setup": "am_startup",
    "commit": "am_startup",
    "rpc": "am_startup",
    "read": "read_compute",
    "compute": "read_compute",
    "spill": "spill_merge",
    "merge": "spill_merge",
    "shuffle": "shuffle",
    "write": "write",
}

_EPS = 1e-9


def classify_span(span: "Span") -> str:
    """Map a span to its overhead class via category, then name heuristics."""
    cls = _CAT_CLASS.get(span.cat)
    if cls is not None:
        return cls
    name = span.name.lower()
    for token, cls in (("spill", "spill_merge"), ("merge", "spill_merge"),
                       ("shuffle", "shuffle"), ("replica", "write"),
                       ("write", "write"), ("read", "read_compute")):
        if token in name:
            return cls
    return "other"


@dataclass
class Segment:
    """One attributed slice of the critical path."""

    start: float
    end: float
    cls: str
    name: str = ""
    lane: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {"start": self.start, "end": self.end, "class": self.cls,
                "name": self.name, "lane": self.lane}


@dataclass
class CriticalPathReport:
    """The attributed partition of ``[t0, t1]``."""

    t0: float
    t1: float
    segments: list[Segment] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return self.t1 - self.t0

    @property
    def totals(self) -> dict[str, float]:
        out = {cls: 0.0 for cls in OVERHEAD_CLASSES}
        for seg in self.segments:
            out[seg.cls] = out.get(seg.cls, 0.0) + seg.duration
        return out

    @property
    def fractions(self) -> dict[str, float]:
        elapsed = self.elapsed
        if elapsed <= 0:
            return {cls: 0.0 for cls in OVERHEAD_CLASSES}
        return {cls: total / elapsed for cls, total in self.totals.items()}

    @property
    def non_compute_fraction(self) -> float:
        """Share of elapsed time that was *not* useful work — the paper's
        framework-overhead fraction (up to ~88% for stock short jobs)."""
        fracs = self.fractions
        return 1.0 - sum(fracs[cls] for cls in WORK_CLASSES)

    def to_dict(self) -> dict:
        return {
            "t0": self.t0,
            "t1": self.t1,
            "elapsed": self.elapsed,
            "totals": self.totals,
            "fractions": self.fractions,
            "non_compute_fraction": self.non_compute_fraction,
            "segments": [seg.to_dict() for seg in self.segments],
        }


def critical_path(tracer: "Tracer", t0: float, t1: float) -> CriticalPathReport:
    """Partition ``[t0, t1]`` into attributed segments via the sweep.

    Only closed *sync* spans participate (async fabric flows overlap freely
    and are already summarized by the task-phase spans that wait on them);
    job root spans (cat ``job``) are excluded so they don't swallow the
    whole window.
    """
    report = CriticalPathReport(t0, t1)
    if t1 <= t0 + _EPS:
        return report
    spans = [s for s in tracer.closed_spans()
             if s.flavor == SYNC and s.cat != "job"
             and s.end > t0 + _EPS and s.start < t1 - _EPS]
    rank = {cls: i for i, cls in enumerate(PRECEDENCE)}

    # Elementary intervals between consecutive span boundaries (clipped to
    # the window); within one interval the active set is constant.
    cuts = sorted({t0, t1}
                  | {min(max(s.start, t0), t1) for s in spans}
                  | {min(max(s.end, t0), t1) for s in spans})
    starts = sorted(spans, key=lambda s: s.start)
    ends = sorted(spans, key=lambda s: s.end)
    active: dict[int, "Span"] = {}
    si = ei = 0

    segments: list[Segment] = []
    for lo, hi in zip(cuts, cuts[1:]):
        if hi - lo <= _EPS:
            continue
        while si < len(starts) and starts[si].start <= lo + _EPS:
            active[starts[si].sid] = starts[si]
            si += 1
        while ei < len(ends) and ends[ei].end <= lo + _EPS:
            active.pop(ends[ei].sid, None)
            ei += 1
        best: Optional["Span"] = None
        best_rank = len(PRECEDENCE)
        for span in active.values():
            r = rank[classify_span(span)]
            if r < best_rank or (r == best_rank and best is not None
                                 and (span.start, span.sid)
                                 > (best.start, best.sid)):
                best, best_rank = span, r
        if best is None:
            cls, name, lane = "other", "(uninstrumented)", ""
        else:
            cls, name, lane = PRECEDENCE[best_rank], best.name, best.lane
        prev = segments[-1] if segments else None
        if prev is not None and prev.cls == cls and prev.name == name \
                and prev.lane == lane and abs(prev.end - lo) <= _EPS:
            prev.end = hi
        else:
            segments.append(Segment(lo, hi, cls, name, lane))
    report.segments = segments
    return report


def analyze_job(tracer: "Tracer", app_id: Optional[str] = None) -> CriticalPathReport:
    """Critical-path report for one completed job.

    The window is the job's root span (cat ``job``, emitted by the client /
    submission framework). With several jobs in the trace, pass ``app_id``
    (matched against the root span's ``args['app_id']``); the default is
    the only — or first — job root.
    """
    roots = [s for s in tracer.closed_spans() if s.cat == "job"]
    if app_id is not None:
        roots = [s for s in roots if s.args.get("app_id") == app_id]
    if not roots:
        raise ValueError(f"no completed job root span found (app_id={app_id!r})")
    root = min(roots, key=lambda s: (s.start, s.sid))
    return critical_path(tracer, root.start, root.end)
