"""Chrome trace-event / Perfetto JSON export of a :class:`Tracer`.

The produced object follows the Trace Event Format (the JSON flavour both
``chrome://tracing`` and https://ui.perfetto.dev load):

* one **pid** per cluster machine (plus a ``cluster`` pseudo-process for
  the client, RM, job roots, and fault injector), named via ``M`` metadata
  events;
* one **tid** per container / daemon lane within its process;
* sync spans as matched ``B``/``E`` duration events (properly nested per
  tid by construction; a span that cannot nest falls back to a single
  ``X`` complete event);
* async spans (overlapping fabric flows) as ``b``/``e`` async pairs;
* instants (fault injections, telemetry alerts) as ``i`` events;
* telemetry ring-buffer series (when a :class:`repro.telemetry.Telemetry`
  is passed) as ``C`` counter events under a ``telemetry`` pseudo-process,
  so scraped time series render as counter tracks overlaying the spans;
* timestamps in microseconds of simulated time, globally non-decreasing.

:func:`validate_trace_events` re-checks all of that on an arbitrary parsed
object — the CI profile-smoke job runs it against the emitted file.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from .tracer import ASYNC, CLUSTER

if TYPE_CHECKING:  # pragma: no cover
    from .tracer import Span, Tracer

_EPS = 1e-9


def _us(t: float) -> float:
    """Simulated seconds -> trace microseconds (rounded for stable JSON)."""
    return round(t * 1e6, 3)


def _process_order(nodes: set[str]) -> list[str]:
    """CLUSTER first, then machines in sorted order."""
    rest = sorted(n for n in nodes if n != CLUSTER)
    return ([CLUSTER] if CLUSTER in nodes else []) + rest


def _emit_sync_lane(spans: list["Span"], pid: int, tid: int,
                    clip_end: float) -> list[dict]:
    """B/E events for one lane, nested by construction.

    Spans are replayed against a stack: anything that cannot nest inside
    the currently-open span is emitted as a standalone ``X`` event instead,
    so the B/E stream always balances. Open spans are clipped to
    ``clip_end``.
    """
    events: list[dict] = []
    stack: list[tuple[float, str]] = []  # (end, name) of open spans

    def close_until(t: float) -> None:
        while stack and stack[-1][0] <= t + _EPS:
            end, name = stack.pop()
            events.append({"ph": "E", "name": name, "pid": pid, "tid": tid,
                           "ts": _us(end)})

    ordered = sorted(spans, key=lambda s: (s.start, -(s.end - s.start), s.sid))
    for span in ordered:
        end = span.end if span.end is not None else clip_end
        close_until(span.start)
        base = {"name": span.name, "cat": span.cat, "pid": pid, "tid": tid,
                "ts": _us(span.start)}
        if span.args:
            base["args"] = dict(span.args)
        if end <= span.start + _EPS:
            base["ph"] = "X"
            base["dur"] = 0
            events.append(base)
            continue
        if stack and end > stack[-1][0] + _EPS:
            # Partial overlap with the open span: not nestable -> X.
            base["ph"] = "X"
            base["dur"] = max(0.0, _us(end) - _us(span.start))
            events.append(base)
            continue
        base["ph"] = "B"
        events.append(base)
        stack.append((end, span.name))
    close_until(float("inf"))
    return events


def _counter_track_name(ring: Any) -> str:
    if not ring.labels:
        return ring.name
    inner = ",".join(f"{k}={v}" for k, v in ring.labels)
    return f"{ring.name}[{inner}]"


def telemetry_counter_events(telemetry: Any, pid: int) -> tuple[list[dict], list[dict]]:
    """``M`` + ``C`` events for every retained telemetry series."""
    meta = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": "telemetry"}},
        {"ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
         "args": {"sort_index": pid}},
    ]
    events: list[dict] = []
    for ring in telemetry.scraper.all_series():
        name = _counter_track_name(ring)
        for t, v in zip(ring.times, ring.values):
            events.append({"ph": "C", "name": name, "pid": pid, "tid": 0,
                           "ts": _us(t), "args": {"value": round(v, 6)}})
    return meta, events


def to_trace_events(tracer: "Tracer", trace_name: str = "repro",
                    telemetry: Any = None) -> dict:
    """Render ``tracer``'s records as a trace-event JSON object (a dict)."""
    spans = tracer.closed_spans() + [s for s in tracer.spans if s.end is None]
    nodes = ({s.node for s in tracer.spans}
             | {i.node for i in tracer.instants}) or {CLUSTER}
    clip_end = max(
        [s.end for s in tracer.spans if s.end is not None]
        + [s.start for s in tracer.spans]
        + [i.ts for i in tracer.instants] + [tracer.env.now], default=0.0)

    pids = {node: i + 1 for i, node in enumerate(_process_order(nodes))}
    # tid 0 is reserved for metadata; lanes are numbered per process in
    # sorted order so the export is byte-stable run to run.
    lanes_by_node: dict[str, list[str]] = {}
    for record in [*tracer.spans, *tracer.instants]:
        lanes = lanes_by_node.setdefault(record.node, [])
        if record.lane not in lanes:
            lanes.append(record.lane)
    tids = {(node, lane): t + 1
            for node, lanes in lanes_by_node.items()
            for t, lane in enumerate(sorted(lanes))}

    meta: list[dict] = []
    for node, pid in pids.items():
        meta.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                     "args": {"name": node}})
        meta.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                     "tid": 0, "args": {"sort_index": pid}})
    for (node, lane), tid in sorted(tids.items(),
                                    key=lambda kv: (pids[kv[0][0]], kv[1])):
        meta.append({"ph": "M", "name": "thread_name", "pid": pids[node],
                     "tid": tid, "args": {"name": lane}})

    timed: list[dict] = []
    sync_lanes: dict[tuple[str, str], list["Span"]] = {}
    for span in spans:
        if span.flavor == ASYNC:
            pid, tid = pids[span.node], tids[(span.node, span.lane)]
            end = span.end if span.end is not None else clip_end
            start_ev = {"ph": "b", "cat": span.cat, "name": span.name,
                        "id": span.sid, "pid": pid, "tid": tid,
                        "ts": _us(span.start)}
            if span.args:
                start_ev["args"] = dict(span.args)
            timed.append(start_ev)
            timed.append({"ph": "e", "cat": span.cat, "name": span.name,
                          "id": span.sid, "pid": pid, "tid": tid,
                          "ts": _us(max(end, span.start))})
        else:
            sync_lanes.setdefault((span.node, span.lane), []).append(span)
    for (node, lane), lane_spans in sync_lanes.items():
        timed.extend(_emit_sync_lane(lane_spans, pids[node],
                                     tids[(node, lane)], clip_end))
    for mark in tracer.instants:
        ev = {"ph": "i", "s": "t", "name": mark.name, "cat": mark.cat,
              "pid": pids[mark.node], "tid": tids[(mark.node, mark.lane)],
              "ts": _us(mark.ts)}
        if mark.args:
            ev["args"] = dict(mark.args)
        timed.append(ev)

    if telemetry is not None:
        counter_meta, counter_events = telemetry_counter_events(
            telemetry, len(pids) + 1)
        meta.extend(counter_meta)
        timed.extend(counter_events)

    # Stable sort by ts: per-lane event order (already time-correct) is
    # preserved for ties, so B/E pairs never flip.
    timed.sort(key=lambda ev: ev["ts"])
    return {
        "traceEvents": meta + timed,
        "displayTimeUnit": "ms",
        "otherData": {"trace_name": trace_name,
                      "metrics": tracer.metrics.snapshot()},
    }


def validate_trace_events(obj: Any) -> list[str]:
    """Check a parsed trace-event object; returns a list of problems.

    Verifies the shape CI relies on: a ``traceEvents`` list, numeric
    non-decreasing ``ts`` on every timed event, and per-(pid, tid) matched
    ``B``/``E`` pairs (LIFO, names agreeing) and matched async ``b``/``e``
    ids. An empty return value means the trace is loadable.
    """
    errors: list[str] = []
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        return ["top level must be an object with a 'traceEvents' list"]

    last_ts: Optional[float] = None
    stacks: dict[tuple[Any, Any], list[str]] = {}
    async_open: dict[tuple[Any, Any, Any], int] = {}
    for i, ev in enumerate(obj["traceEvents"]):
        if not isinstance(ev, dict) or "ph" not in ev:
            errors.append(f"event {i}: not an object with 'ph'")
            continue
        ph = ev["ph"]
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"event {i} ({ph} {ev.get('name')!r}): missing numeric 'ts'")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(f"event {i}: ts {ts} < previous {last_ts} (non-monotonic)")
        last_ts = ts
        key = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            stacks.setdefault(key, []).append(ev.get("name", ""))
        elif ph == "E":
            stack = stacks.get(key, [])
            if not stack:
                errors.append(f"event {i}: E with no open B on pid/tid {key}")
            else:
                opened = stack.pop()
                name = ev.get("name", opened)
                if name != opened:
                    errors.append(f"event {i}: E {name!r} closes B {opened!r}")
        elif ph in ("b", "e"):
            akey = (ev.get("cat"), ev.get("id"), ev.get("name"))
            if ph == "b":
                async_open[akey] = async_open.get(akey, 0) + 1
            else:
                if async_open.get(akey, 0) <= 0:
                    errors.append(f"event {i}: async 'e' without 'b' for {akey}")
                else:
                    async_open[akey] -= 1
        elif ph not in ("X", "i", "I", "C"):
            errors.append(f"event {i}: unsupported phase {ph!r}")
    for key, stack in stacks.items():
        if stack:
            errors.append(f"unclosed B events on pid/tid {key}: {stack}")
    for akey, n in async_open.items():
        if n:
            errors.append(f"unclosed async span {akey}")
    return errors
