"""Declarative fault injection for simulated clusters.

Build a seeded :class:`FaultPlan` describing crashes, rejoins, gray disks,
degraded or partitioned networks, and flaky containers; attach it to any
:class:`~repro.simcluster.SimCluster` with :func:`inject`. See
``docs/fault_tolerance.md`` for the recovery machinery the injected faults
exercise.
"""

from .injector import FaultInjector, inject
from .plan import (
    NAMED_PLANS,
    ContainerFlakiness,
    DiskSlowdown,
    FaultEvent,
    FaultPlan,
    NetworkDegradation,
    NetworkPartition,
    NodeCrash,
    NodeRestart,
    churn_plan,
    gray_plan,
    named_plan,
)

__all__ = [
    "ContainerFlakiness",
    "DiskSlowdown",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "NAMED_PLANS",
    "NetworkDegradation",
    "NetworkPartition",
    "NodeCrash",
    "NodeRestart",
    "churn_plan",
    "gray_plan",
    "inject",
    "named_plan",
]
