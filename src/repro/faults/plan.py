"""Declarative, seeded fault plans.

A :class:`FaultPlan` is an immutable description of *what goes wrong and
when* during a simulated run: machine crashes (and optional rejoins), gray
failures (a disk serving at a fraction of its bandwidth, a NIC dropped to a
trickle), network partitions, and per-container flakiness. Plans are data —
they can be built fluently, merged with ``+``, attached to any cluster via
:func:`repro.faults.inject`, and replayed deterministically: every random
draw (victim selection, per-container crash coin flips) comes from a
``random.Random(plan.seed)`` owned by the injector.

Victims may be concrete node ids (``"dn2"``) or selectors resolved at fire
time against live cluster state:

``@random``            a seeded draw over alive nodes
``@random-non-am``     same, excluding nodes hosting ApplicationMasters
``@busiest``           the alive node running the most containers
``@busiest-non-am``    same, excluding AM nodes
``@job-am``            the node hosting the most recently placed AM
``@last-crashed``      the victim of the previous crash (for restarts)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

INF = float("inf")


@dataclass(frozen=True)
class NodeCrash:
    """Machine (or NodeManager-only, with ``hdfs=False``) death at ``at``."""

    at: float
    node: str = "@random"
    #: True = whole machine: the DataNode dies with the NM, replicas are
    #: written off and re-replication starts. False = YARN-only outage.
    hdfs: bool = True


@dataclass(frozen=True)
class NodeRestart:
    """A crashed machine rejoins (empty) at ``at``."""

    at: float
    node: str = "@last-crashed"


@dataclass(frozen=True)
class DiskSlowdown:
    """Gray disk: bandwidth divided by ``factor`` for ``duration`` seconds."""

    at: float
    factor: float
    node: str = "@random"
    duration: float = INF


@dataclass(frozen=True)
class NetworkDegradation:
    """Gray NIC: both directions divided by ``factor`` for ``duration``."""

    at: float
    factor: float
    node: str = "@random"
    duration: float = INF


@dataclass(frozen=True)
class NetworkPartition:
    """``nodes`` lose (effectively) all connectivity for ``duration``.

    Modelled as an extreme NIC degradation, so in-flight transfers stall
    rather than abort and resume transparently when the partition heals —
    the TCP-keeps-retrying behaviour of a real switch outage.
    """

    at: float
    nodes: Tuple[str, ...]
    duration: float
    factor: float = 1e9


@dataclass(frozen=True)
class ContainerFlakiness:
    """Each container launched on ``node`` ("@all" = everywhere) crashes
    with probability ``rate``, ``crash_after_s`` seconds into its run."""

    at: float
    rate: float
    crash_after_s: float = 1.0
    node: str = "@all"
    duration: float = INF


FaultEvent = Union[NodeCrash, NodeRestart, DiskSlowdown, NetworkDegradation,
                   NetworkPartition, ContainerFlakiness]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable set of fault events plus the RNG seed."""

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 17

    # -- fluent builders (each returns a new plan) --------------------------
    def _with(self, event: FaultEvent) -> "FaultPlan":
        return FaultPlan(self.events + (event,), self.seed)

    def crash(self, at: float, node: str = "@random",
              hdfs: bool = True) -> "FaultPlan":
        return self._with(NodeCrash(at, node, hdfs))

    def restart(self, at: float, node: str = "@last-crashed") -> "FaultPlan":
        return self._with(NodeRestart(at, node))

    def slow_disk(self, at: float, factor: float, node: str = "@random",
                  duration: float = INF) -> "FaultPlan":
        return self._with(DiskSlowdown(at, factor, node, duration))

    def degrade_network(self, at: float, factor: float, node: str = "@random",
                        duration: float = INF) -> "FaultPlan":
        return self._with(NetworkDegradation(at, factor, node, duration))

    def partition(self, at: float, nodes: Tuple[str, ...],
                  duration: float) -> "FaultPlan":
        return self._with(NetworkPartition(at, tuple(nodes), duration))

    def flaky_containers(self, at: float, rate: float,
                         crash_after_s: float = 1.0, node: str = "@all",
                         duration: float = INF) -> "FaultPlan":
        if not 0 <= rate <= 1:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        return self._with(ContainerFlakiness(at, rate, crash_after_s, node,
                                             duration))

    def with_seed(self, seed: int) -> "FaultPlan":
        return FaultPlan(self.events, seed)

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        """Merge two plans (left plan's seed wins)."""
        return FaultPlan(self.events + other.events, self.seed)

    def __len__(self) -> int:
        return len(self.events)


# -- named plans (CLI / experiment shorthand) -----------------------------------

def churn_plan(duration_s: float, period_s: float = 90.0,
               down_s: float = 35.0, start_s: float = 45.0,
               seed: int = 23) -> FaultPlan:
    """Steady node churn: every ``period_s`` a random node crashes and
    rejoins ``down_s`` later, from ``start_s`` until ``duration_s``.

    The serving experiments run this under load: capacity keeps
    dipping, so static provisioning misses deadlines while the autoscaler
    backfills crashed nodes.
    """
    plan = FaultPlan(seed=seed)
    t = start_s
    while t < duration_s:
        plan = plan.crash(t).restart(min(t + down_s, duration_s))
        t += period_s
    return plan


def gray_plan(duration_s: float, seed: int = 23) -> FaultPlan:
    """A gray-failure mix: one slow disk and one degraded NIC mid-run."""
    return (FaultPlan(seed=seed)
            .slow_disk(duration_s * 0.25, factor=6.0, duration=duration_s * 0.4)
            .degrade_network(duration_s * 0.5, factor=4.0,
                             duration=duration_s * 0.3))


def named_plan(name: str, duration_s: float, seed: int = 23) -> FaultPlan:
    """Resolve a CLI-friendly plan name (``repro trace --fault-plan``)."""
    if name == "churn":
        return churn_plan(duration_s, seed=seed)
    if name == "crash":
        return (FaultPlan(seed=seed)
                .crash(duration_s * 0.3)
                .restart(duration_s * 0.6))
    if name == "gray":
        return gray_plan(duration_s, seed=seed)
    raise ValueError(f"unknown fault plan {name!r}; use one of {NAMED_PLANS}")


#: Names accepted by :func:`named_plan`.
NAMED_PLANS = ("churn", "crash", "gray")
