"""The fault injector: replays a :class:`FaultPlan` against a SimCluster.

One driver process walks the plan in time order and fires each event
through the cluster's public fault hooks (``fail_node`` / ``restart_node``,
``DiskDevice.set_slowdown``, ``ClusterNetwork.set_node_degradation``,
``NodeManager.set_flakiness``). Victim selectors are resolved *at fire
time* against live cluster state, with every random draw taken from the
plan's seeded RNG — the same plan on the same cluster build produces a
byte-identical fault timeline, run after run.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Generator, List, Optional, Tuple

from .plan import (
    ContainerFlakiness,
    DiskSlowdown,
    FaultPlan,
    NetworkDegradation,
    NetworkPartition,
    NodeCrash,
    NodeRestart,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..simcluster import SimCluster


class FaultInjector:
    """Drives one plan against one cluster. Inspect ``timeline`` afterwards."""

    def __init__(self, cluster: "SimCluster", plan: FaultPlan) -> None:
        self.cluster = cluster
        self.plan = plan
        self.rng = random.Random(plan.seed)
        #: (time, kind, victim) records of every fired (or skipped) event.
        self.timeline: List[Tuple[float, str, str]] = []
        self.last_crashed: Optional[str] = None
        self._proc = cluster.env.process(self._drive(), name="fault-injector")

    # -- driver -------------------------------------------------------------
    def _drive(self) -> Generator:
        env = self.cluster.env
        ordered = sorted(enumerate(self.plan.events),
                         key=lambda pair: (pair[1].at, pair[0]))
        for _, event in ordered:
            delay = event.at - env.now
            if delay > 0:
                yield env.timeout(delay)
            self._fire(event)

    def _fire(self, event) -> None:
        if isinstance(event, NodeCrash):
            self._crash(event)
        elif isinstance(event, NodeRestart):
            self._restart(event)
        elif isinstance(event, DiskSlowdown):
            self._slow_disk(event)
        elif isinstance(event, NetworkDegradation):
            self._degrade(event)
        elif isinstance(event, NetworkPartition):
            self._partition(event)
        elif isinstance(event, ContainerFlakiness):
            self._flaky(event)
        else:  # pragma: no cover - plan types are closed
            raise TypeError(f"unknown fault event {event!r}")

    def _record(self, kind: str, victim: str) -> None:
        env = self.cluster.env
        now = env.now
        self.timeline.append((now, kind, victim))
        self.cluster.log.mark(now, "fault_injected", kind=kind, victim=victim)
        if env.tracer is not None:
            from ..observe.tracer import CLUSTER
            env.tracer.instant(kind, "fault", CLUSTER, "faults", victim=victim)
            env.tracer.metrics.incr(f"faults:{kind}")

    # -- event handlers -----------------------------------------------------
    def _crash(self, ev: NodeCrash) -> None:
        node = self._resolve(ev.node)
        if node is None:
            self._record("crash_skipped", ev.node)
            return
        self.last_crashed = node
        if ev.hdfs:
            self.cluster.fail_node(node)
        else:
            self.cluster.rm.node_managers[node].fail()
        self._record("crash" if ev.hdfs else "crash_nm", node)

    def _restart(self, ev: NodeRestart) -> None:
        node = self.last_crashed if ev.node == "@last-crashed" else ev.node
        if node is None or not self.cluster.rm.node_managers[node].failed:
            self._record("restart_skipped", ev.node)
            return
        self.cluster.restart_node(node)
        self._record("restart", node)

    def _slow_disk(self, ev: DiskSlowdown) -> None:
        node = self._resolve(ev.node)
        if node is None:
            self._record("slow_disk_skipped", ev.node)
            return
        disk = self.cluster.topology.node(node).disk
        disk.set_slowdown(ev.factor)
        self._record("slow_disk", node)
        if ev.duration != float("inf"):
            self._after(ev.duration, lambda: self._restore_disk(node))

    def _restore_disk(self, node: str) -> None:
        self.cluster.topology.node(node).disk.set_slowdown(1.0)
        self._record("disk_restored", node)

    def _degrade(self, ev: NetworkDegradation) -> None:
        node = self._resolve(ev.node)
        if node is None:
            self._record("degrade_skipped", ev.node)
            return
        self.cluster.network.set_node_degradation(node, ev.factor)
        self._record("degrade_net", node)
        if ev.duration != float("inf"):
            self._after(ev.duration, lambda: self._restore_net(node))

    def _restore_net(self, node: str) -> None:
        self.cluster.network.restore_node(node)
        self._record("net_restored", node)

    def _partition(self, ev: NetworkPartition) -> None:
        victims = []
        for sel in ev.nodes:
            node = self._resolve(sel)
            if node is not None and node not in victims:
                victims.append(node)
        for node in victims:
            self.cluster.network.set_node_degradation(node, ev.factor)
            self._record("partition", node)
        if victims and ev.duration != float("inf"):
            def heal() -> None:
                for node in victims:
                    self.cluster.network.restore_node(node)
                    self._record("partition_healed", node)
            self._after(ev.duration, heal)

    def _flaky(self, ev: ContainerFlakiness) -> None:
        if ev.node == "@all":
            nms = list(self.cluster.node_managers)
        else:
            node = self._resolve(ev.node)
            if node is None:
                self._record("flaky_skipped", ev.node)
                return
            nms = [self.cluster.rm.node_managers[node]]

        def decide(container, _rate=ev.rate, _after=ev.crash_after_s):
            return _after if self.rng.random() < _rate else None

        for nm in nms:
            nm.set_flakiness(decide)
            self._record("flaky_on", nm.node_id)
        if ev.duration != float("inf"):
            def clear() -> None:
                for nm in nms:
                    nm.set_flakiness(None)
                    self._record("flaky_off", nm.node_id)
            self._after(ev.duration, clear)

    def _after(self, delay: float, action) -> None:
        def restorer() -> Generator:
            yield self.cluster.env.timeout(delay)
            action()

        self.cluster.env.process(restorer(), name="fault-restore")

    # -- victim selection ---------------------------------------------------
    def _alive(self, node_id: str) -> bool:
        nm = self.cluster.rm.node_managers.get(node_id)
        return nm is not None and not nm.failed

    def _am_nodes(self) -> set:
        """Nodes currently hosting an ApplicationMaster (pooled or stock)."""
        nodes = set()
        framework = getattr(self.cluster, "mrapid_framework", None)
        if framework is not None:
            nodes.update(s.node_id for s in framework.slaves)
        rm = self.cluster.rm
        for app_id, proc in rm._am_processes.items():
            if proc.is_alive:
                app = rm.apps.get(app_id)
                if app is not None and app.am_container is not None:
                    nodes.add(app.am_container.node_id)
        return nodes

    def _job_am_node(self) -> Optional[str]:
        """The node of the most recently placed, still-alive AM."""
        framework = getattr(self.cluster, "mrapid_framework", None)
        if framework is not None:
            busy = [s for s in framework.slaves if s.busy and self._alive(s.node_id)]
            if busy:
                return busy[-1].node_id
        for mark in reversed(self.cluster.log.marks):
            if mark.label == "am_allocated":
                node = mark.data.get("node")
                if node and self._alive(node):
                    return node
        return None

    def _resolve(self, selector: str) -> Optional[str]:
        """Resolve a victim selector against live state (None = no victim)."""
        if not selector.startswith("@"):
            return selector if self._alive(selector) else None
        if selector == "@last-crashed":
            return self.last_crashed
        if selector == "@job-am":
            return self._job_am_node()
        alive = sorted(n for n in self.cluster.rm.node_managers
                       if self._alive(n))
        if selector in ("@random-non-am", "@busiest-non-am"):
            am_nodes = self._am_nodes()
            alive = [n for n in alive if n not in am_nodes]
        if not alive:
            return None
        if selector in ("@random", "@random-non-am"):
            return self.rng.choice(alive)
        if selector in ("@busiest", "@busiest-non-am"):
            return max(alive, key=lambda n: (
                len(self.cluster.rm.node_managers[n].running), n))
        raise ValueError(f"unknown victim selector {selector!r}")


def inject(cluster: "SimCluster", plan: FaultPlan) -> FaultInjector:
    """Attach ``plan`` to ``cluster``; returns the running injector."""
    return FaultInjector(cluster, plan)
