"""Spark-lite execution: driver + long-lived executors over the simulator.

The execution model mirrors Spark-on-YARN where it matters to short jobs:

* one driver (AM) container plus N executor containers, all allocated
  through the cluster's installed scheduler (stock heartbeat-driven or D+);
* executors are JVMs that live for the whole application: tasks dispatch to
  them over RPC with *no per-task container launch*;
* stage outputs are cached in executor memory; shuffles move bytes directly
  executor-to-executor over the network fabric;
* ``warm_pool=True`` applies MRapid's submission-framework idea (§VI): the
  driver and executors are pre-provisioned like the AM pool, so a short
  application pays none of the startup cost — the paper's observation that
  "Spark on Yarn is still slow for short jobs because of the high overhead
  to launch containers for AMs and executors" is exactly the cold path here.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Generator, Optional, Sequence

from ..cluster.resources import ResourceVector
from ..mapreduce.tasks import wait_flow
from ..simulation.resources import Resource
from ..yarn.records import Application, Container, ContainerRequest
from .dag import SparkResult, SparkStage, StageResult, validate_dag

if TYPE_CHECKING:  # pragma: no cover
    from ..simcluster import SimCluster


class SparkExecutor:
    """A long-lived executor JVM on one node.

    ``cache_limit_mb`` bounds the in-memory block store (the storage
    fraction of the executor heap); cached partitions beyond it spill to
    the node's disk — both the write now and the read-back at the next
    stage boundary are real timed I/O.
    """

    def __init__(self, cluster: "SimCluster", container: Container,
                 task_slots: int, executor_id: int,
                 cache_limit_mb: float = float("inf")) -> None:
        self.cluster = cluster
        self.container = container
        self.executor_id = executor_id
        self.node_id = container.node_id
        self.slots = Resource(cluster.env, capacity=task_slots)
        self.cached_mb = 0.0
        self.cache_limit_mb = cache_limit_mb
        self.spilled_mb = 0.0

    def cache_partition(self, mb: float) -> float:
        """Reserve cache for a partition; returns the MB that must spill."""
        fits = max(0.0, min(mb, self.cache_limit_mb - self.cached_mb))
        self.cached_mb += fits
        overflow = mb - fits
        self.spilled_mb += overflow
        return overflow


class SparkLiteRunner:
    """Runs Spark-lite DAGs on a simulated cluster."""

    def __init__(self, cluster: "SimCluster", num_executors: int = 3,
                 executor_vcores: int = 2, executor_memory_mb: int = 1536,
                 warm_pool: bool = False,
                 storage_fraction: float = 0.5) -> None:
        if num_executors < 1 or executor_vcores < 1:
            raise ValueError("need at least one executor with one core")
        if not 0 < storage_fraction <= 1:
            raise ValueError("storage_fraction must be in (0, 1]")
        self.cluster = cluster
        self.num_executors = num_executors
        self.executor_vcores = executor_vcores
        self.executor_memory_mb = executor_memory_mb
        self.cache_limit_mb = executor_memory_mb * storage_fraction
        self.warm_pool = warm_pool
        # Per-runner, not module-level: ids reset with each application, so
        # partition_homes in results never depend on what ran earlier in
        # the process.
        self._executor_ids = itertools.count(1)
        self._warm_executors: Optional[list[SparkExecutor]] = None
        if warm_pool:
            self._warm_executors = self._provision_now()

    # -- provisioning ---------------------------------------------------------
    def _provision_now(self) -> list[SparkExecutor]:
        """Reserve executor containers directly (pre-warmed pool at t=0)."""
        executors = []
        states = sorted(self.cluster.rm.nodes.values(),
                        key=lambda s: (-s.available.memory_mb, s.node_id))
        demand = ResourceVector(self.executor_memory_mb, self.executor_vcores)
        for i in range(self.num_executors):
            state = states[i % len(states)]
            if not state.can_fit(demand):
                state = next((s for s in states if s.can_fit(demand)), None)
                if state is None:
                    break
            container = Container(self.cluster.rm.next_container_id(), state.node_id,
                                  demand, app_id="sparklite-pool")
            state.allocate(demand)
            executors.append(SparkExecutor(self.cluster, container,
                                           self.executor_vcores,
                                           next(self._executor_ids),
                                           cache_limit_mb=self.cache_limit_mb))
        if not executors:
            raise ValueError("cluster too small for even one warm executor")
        return executors

    # -- public -------------------------------------------------------------------
    def submit(self, stages: Sequence[SparkStage]):
        validate_dag(stages)
        return self.cluster.env.process(self._run(list(stages)), name="sparklite")

    def run(self, stages: Sequence[SparkStage]) -> SparkResult:
        proc = self.submit(stages)
        self.cluster.env.run(until=proc)
        return proc.value

    # -- application ------------------------------------------------------------------
    def _run(self, stages: list[SparkStage]) -> Generator:
        env = self.cluster.env
        conf = self.cluster.conf
        rm = self.cluster.rm
        app_id = rm.next_app_id("spark")
        result = SparkResult(app_id=app_id, submit_time=env.now,
                             warm_start=self.warm_pool,
                             num_executors=self.num_executors)

        yield env.timeout(conf.client_submit_s)

        if self.warm_pool:
            executors = self._warm_executors
            result.driver_start_time = env.now
            result.executors_ready_time = env.now
        else:
            # Cold start: driver AM through the RM, then executor containers
            # through the scheduler, each paying the JVM launch.
            driver_started = env.event()

            def driver_body(ctx) -> Generator:
                driver_started.succeed(ctx.node_id)
                yield env.timeout(conf.am_init_s)
                return None

            app = Application(app_id=app_id, name="sparklite-driver",
                              am_resource=ResourceVector(conf.am_memory_mb,
                                                         conf.am_vcores),
                              runner=lambda ctx: _driver_forever(ctx, driver_started,
                                                                 conf))
            rm.submit_application(app)
            yield driver_started
            result.driver_start_time = env.now
            yield env.timeout(conf.am_init_s)

            demand = ResourceVector(self.executor_memory_mb, self.executor_vcores)
            asks = [ContainerRequest(demand) for _ in range(self.num_executors)]
            granted: list[Container] = []
            granted.extend(rm.allocate(app_id, asks))
            while len(granted) < self.num_executors:
                yield env.timeout(conf.am_heartbeat_s)
                granted.extend(rm.allocate(app_id, []))
            # Executor JVMs launch in parallel.
            yield env.timeout(conf.container_launch_s)
            executors = [SparkExecutor(self.cluster, c, self.executor_vcores,
                                       next(self._executor_ids),
                                       cache_limit_mb=self.cache_limit_mb)
                         for c in granted]
            result.executors_ready_time = env.now
            self._cold_app = app  # so we can tear down below

        # -- run stages in topological order -------------------------------------
        stage_results: dict[str, StageResult] = {}
        for stage in stages:
            record = yield from self._run_stage(stage, executors, stage_results)
            stage_results[stage.name] = record
        result.stages = stage_results
        result.finish_time = env.now

        if not self.warm_pool:
            for executor in executors:
                rm.container_finished(executor.container)
            rm.kill_application(self._cold_app, "application finished")
        return result

    # -- stages ---------------------------------------------------------------------------
    def _run_stage(self, stage: SparkStage, executors: list[SparkExecutor],
                   prior: dict[str, StageResult]) -> Generator:
        env = self.cluster.env
        record = StageResult(stage.name, start_time=env.now)

        if stage.is_source:
            splits = self._source_partitions(stage)
            n_parts = len(splits)
        else:
            parents = [prior[p] for p in stage.parents]
            total_in = sum(p.output_mb for p in parents)
            n_parts = stage.partitions or max(len(executors), 1)
            splits = [("__shuffle__", total_in / n_parts)] * n_parts
        record.tasks = n_parts
        record.input_mb = sum(mb for _src, mb in splits)

        def task(index: int, executor: SparkExecutor) -> Generator:
            with executor.slots.request() as slot:
                yield slot
                src, mb = splits[index]
                if stage.is_source:
                    yield from self._read_source(src, index, executor)
                else:
                    moved = yield from self._fetch_shuffle(
                        mb, executor, [prior[p] for p in stage.parents],
                        executors)
                    record.shuffle_mb_moved += moved
                cpu_s = stage.cpu_fixed_s + mb * stage.cpu_s_per_mb
                if cpu_s > 0:
                    node = self.cluster.topology.node(executor.node_id)
                    yield from wait_flow(node.cpu.compute(cpu_s,
                                                          label=f"{stage.name}#{index}"))
                out_mb = mb * stage.output_ratio
                overflow = executor.cache_partition(out_mb)
                if overflow > 0:
                    # Block-store eviction: the overflow spills to local disk.
                    node = self.cluster.topology.node(executor.node_id)
                    yield from wait_flow(node.disk.write(overflow,
                                                         label="spark-spill"))
                record.partition_homes[index] = executor.executor_id
                record.output_mb += out_mb

        procs = [
            env.process(task(i, executors[i % len(executors)]),
                        name=f"{stage.name}-t{i}")
            for i in range(n_parts)
        ]
        if procs:
            yield env.all_of(procs)
        record.finish_time = env.now
        return record

    # -- data movement -------------------------------------------------------------------
    def _source_partitions(self, stage: SparkStage) -> list[tuple[str, float]]:
        splits = []
        for path in stage.inputs:
            file = self.cluster.namenode.get_file(path)
            for block in file.blocks:
                splits.append((path, block.size_mb))
        return splits

    def _read_source(self, path: str, index: int,
                     executor: SparkExecutor) -> Generator:
        file = self.cluster.namenode.get_file(path)
        block = file.blocks[min(index, len(file.blocks) - 1)]
        yield from _interruptible_block_read(self.cluster, block,
                                             executor.node_id)

    def _fetch_shuffle(self, mb: float, executor: SparkExecutor,
                       parents: list[StageResult],
                       executors: list[SparkExecutor]) -> Generator:
        """Pull this partition's share from every parent partition's home."""
        by_id = {e.executor_id: e for e in executors}
        moved = 0.0
        flows = []
        total_parent = sum(p.output_mb for p in parents) or 1.0
        fraction = mb / total_parent  # this partition's share of all data
        for parent in parents:
            n_homes = max(1, len(parent.partition_homes))
            per_home = parent.output_mb / n_homes
            for _part, home_id in parent.partition_homes.items():
                home = by_id.get(home_id)
                if home is None:
                    continue
                share = per_home * fraction
                if home.node_id != executor.node_id and share > 0:
                    flows.append(self.cluster.network.transfer(
                        home.node_id, executor.node_id, share, label="spark-shuffle"))
                    moved += share
        for flow in flows:
            yield from wait_flow(flow)
        return moved


def _driver_forever(ctx, started_event, conf) -> Generator:
    """Cold-start driver body: signal readiness, then idle until killed."""
    if not started_event.triggered:
        started_event.succeed(ctx.node_id)
    from ..simulation.errors import Interrupt

    try:
        while True:
            yield ctx.env.timeout(conf.am_heartbeat_s)
    except Interrupt:
        return None


def _interruptible_block_read(cluster: "SimCluster", block, at_node: str) -> Generator:
    from ..simulation.errors import Interrupt

    source = cluster.topology.closest_replica(at_node, block.replicas)
    if source is None or block.size_mb <= 0:
        return
    disk = cluster.topology.node(source).disk.read(block.size_mb, label="spark-src")
    flows = [disk]
    wait = disk.done
    if source != at_node:
        net = cluster.network.transfer(source, at_node, block.size_mb,
                                       label="spark-src")
        flows.append(net)
        wait = disk.done & net.done
    try:
        yield wait
    except Interrupt:
        for flow in flows:
            flow.fabric.kill(flow)
        raise
