"""Spark-lite: the paper's §VI future work — MRapid's techniques on a DAG
engine with long-lived executors and in-memory stage caching."""

from .dag import (
    SparkResult,
    SparkStage,
    StageResult,
    stage_from_profile,
    validate_dag,
)
from .runner import SparkExecutor, SparkLiteRunner

__all__ = [
    "SparkExecutor",
    "SparkLiteRunner",
    "SparkResult",
    "SparkStage",
    "StageResult",
    "stage_from_profile",
    "validate_dag",
]
