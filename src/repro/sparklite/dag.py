"""Logical DAGs for the Spark-lite engine: stages, lineage, validation.

Paper §VI: "we plan to migrate MRapid to Spark ... Several optimization
techniques of our system can also improve the performance of Spark on Yarn
such as the submission framework and the improved CapacityScheduler."

A :class:`SparkStage` transforms the cached outputs of its parent stages
(or HDFS paths for sources) into a new cached dataset. Unlike the MapReduce
chains in :mod:`repro.core.chain`, stage boundaries exchange data between
long-lived *executors* in memory — no HDFS materialization, no per-stage AM,
no per-task container launch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..workloads.base import WorkloadProfile


@dataclass(frozen=True)
class SparkStage:
    """One stage of a Spark-lite application.

    ``inputs`` are HDFS paths (source stage) XOR ``parents`` are earlier
    stage names (shuffle stage). ``output_ratio`` sizes this stage's cached
    output relative to its input bytes; ``cpu_s_per_mb`` is the task compute
    cost. ``partitions`` overrides the parallelism (default: one task per
    input file for sources, parent partition count for shuffles).
    """

    name: str
    cpu_s_per_mb: float
    output_ratio: float = 1.0
    inputs: tuple[str, ...] = ()
    parents: tuple[str, ...] = ()
    partitions: Optional[int] = None
    cpu_fixed_s: float = 0.0

    def __post_init__(self) -> None:
        if bool(self.inputs) == bool(self.parents):
            raise ValueError(
                f"stage {self.name!r} must have exactly one of inputs/parents")
        if self.cpu_s_per_mb < 0 or self.output_ratio < 0:
            raise ValueError(f"stage {self.name!r}: negative costs")

    @property
    def is_source(self) -> bool:
        return bool(self.inputs)


def stage_from_profile(name: str, profile: WorkloadProfile,
                       inputs: Sequence[str] = (), parents: Sequence[str] = (),
                       partitions: Optional[int] = None) -> SparkStage:
    """Build a stage from a MapReduce workload profile's map-side costs."""
    return SparkStage(
        name=name,
        cpu_s_per_mb=profile.map_cpu_s_per_mb,
        output_ratio=profile.map_output_ratio,
        inputs=tuple(inputs),
        parents=tuple(parents),
        partitions=partitions,
        cpu_fixed_s=profile.map_cpu_fixed_s,
    )


def validate_dag(stages: Sequence[SparkStage]) -> None:
    """Unique names; parents must be earlier stages (topological order)."""
    seen: set[str] = set()
    for stage in stages:
        if stage.name in seen:
            raise ValueError(f"duplicate stage {stage.name!r}")
        for parent in stage.parents:
            if parent not in seen:
                raise ValueError(
                    f"stage {stage.name!r} references {parent!r} before it is defined")
        seen.add(stage.name)
    if not stages:
        raise ValueError("empty DAG")
    if not stages[0].is_source:
        raise ValueError("first stage must be a source")


@dataclass
class StageResult:
    """Execution record of one stage."""

    name: str
    start_time: float = 0.0
    finish_time: float = 0.0
    input_mb: float = 0.0
    output_mb: float = 0.0
    tasks: int = 0
    shuffle_mb_moved: float = 0.0
    #: partition index -> executor id holding the cached output.
    partition_homes: dict[int, int] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        return self.finish_time - self.start_time


@dataclass
class SparkResult:
    """Outcome of one Spark-lite application run."""

    app_id: str
    submit_time: float
    driver_start_time: float = 0.0
    executors_ready_time: float = 0.0
    finish_time: float = 0.0
    stages: dict[str, StageResult] = field(default_factory=dict)
    warm_start: bool = False
    num_executors: int = 0

    @property
    def elapsed(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def startup_overhead(self) -> float:
        """Submission to all-executors-ready — what a warm pool removes."""
        return self.executors_ready_time - self.submit_time

    def total_shuffle_mb(self) -> float:
        return sum(s.shuffle_mb_moved for s in self.stages.values())
