"""DataNode daemons: block inventory, block reports, re-replication.

Completes the HDFS fault story: when a DataNode dies, the NameNode notices
missed block reports, marks its replicas gone, and schedules re-replication
of under-replicated blocks onto surviving nodes (real network + disk
traffic — which is exactly the background load a production cluster carries
while your short job runs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..cluster.topology import Topology
from .block import Block
from .namenode import NameNode

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.network import ClusterNetwork
    from ..simulation.core import Environment


class DataNodeDaemon:
    """One DataNode's view: which blocks it stores, and its liveness."""

    def __init__(self, env: "Environment", node_id: str, namenode: NameNode,
                 report_interval_s: float = 3.0,
                 start_reporting: bool = False) -> None:
        self.env = env
        self.node_id = node_id
        self.namenode = namenode
        self.report_interval_s = report_interval_s
        self.failed = False
        self.last_report = -1.0
        self._proc = None
        if start_reporting:
            self.start_reporting()

    def start_reporting(self) -> None:
        """Begin the periodic block-report loop.

        Off by default: a perpetual loop keeps the event queue non-empty
        forever, which changes the semantics of ``env.run()`` without
        ``until`` for every caller. Components that need liveness tracking
        opt in.
        """
        if self._proc is not None and self._proc.is_alive:
            raise RuntimeError("already reporting")
        self._proc = self.env.process(self._report_loop(),
                                      name=f"dn-report-{self.node_id}")

    def blocks(self) -> list[Block]:
        return self.namenode.blocks_on_node(self.node_id)

    def used_mb(self) -> float:
        return sum(b.size_mb for b in self.blocks())

    def _report_loop(self) -> Generator:
        while not self.failed:
            self.last_report = self.env.now
            yield self.env.timeout(self.report_interval_s)

    def fail(self) -> None:
        if self.failed:
            return
        self.failed = True
        if self._proc is not None and self._proc.is_alive:
            self._proc.defuse()
            self._proc.interrupt("datanode down")

    def restart(self) -> None:
        """Recover from a failure: resume block reports if they were on.

        The node rejoins with an empty inventory — the NameNode wrote its
        replicas off when it died (real HDFS would delete the stale block
        files after the new block reports anyway).
        """
        if not self.failed:
            return
        self.failed = False
        if self._proc is not None:
            self.start_reporting()


class ReplicationManager:
    """NameNode-side: detect dead DataNodes, restore replication factors.

    ``handle_datanode_loss`` removes the dead node from every block's
    replica list and kicks off timed re-replication flows (read from a
    surviving replica, stream across the network, write on the target),
    choosing targets that keep the rack-spread invariant when possible.
    """

    def __init__(self, env: "Environment", namenode: NameNode,
                 network: "ClusterNetwork", topology: Topology) -> None:
        self.env = env
        self.namenode = namenode
        self.network = network
        self.topology = topology
        self.dead_nodes: set[str] = set()
        #: (block_id, new_target) pairs completed, for tests/metrics.
        self.replications_done: list[tuple[int, str]] = []
        self.lost_blocks: list[int] = []

    # -- entry point -----------------------------------------------------------
    def handle_datanode_loss(self, node_id: str):
        """Returns a process that completes when re-replication finishes."""
        self.dead_nodes.add(node_id)
        return self.env.process(self._rereplicate(node_id),
                                name=f"re-replication-{node_id}")

    def _rereplicate(self, node_id: str) -> Generator:
        under_replicated: list[Block] = []
        for path in self.namenode.list_files():
            for block in self.namenode.get_file(path).blocks:
                if node_id in block.replicas:
                    block.replicas.remove(node_id)
                    if not block.replicas:
                        self.lost_blocks.append(block.block_id)
                    elif block.size_mb > 0:
                        under_replicated.append(block)

        jobs = [self.env.process(self._copy_block(block),
                                 name=f"repl-blk{block.block_id}")
                for block in under_replicated]
        if jobs:
            yield self.env.all_of(jobs)
        return len(jobs)

    def _copy_block(self, block: Block) -> Generator:
        target = self._pick_target(block)
        if target is None:
            return  # nowhere to put another replica
        source = self.topology.closest_replica(target, block.replicas)
        if source is None:
            return
        disk_read = self.topology.node(source).disk.read(block.size_mb,
                                                         label=f"rerepl{block.block_id}")
        net = self.network.transfer(source, target, block.size_mb,
                                    label=f"rerepl{block.block_id}")
        yield disk_read.done & net.done
        write = self.topology.node(target).disk.write(block.size_mb,
                                                      label=f"rerepl{block.block_id}")
        yield write.done
        block.replicas.append(target)
        self.replications_done.append((block.block_id, target))

    def _pick_target(self, block: Block) -> Optional[str]:
        """A live node without this block, preferring an uncovered rack."""
        candidates = [
            n for n in self.topology.node_ids
            if n not in self.dead_nodes and n not in block.replicas
        ]
        if not candidates:
            return None
        covered_racks = {self.topology.rack_of(r) for r in block.replicas
                         if r in self.topology}
        for node in candidates:
            if self.topology.rack_of(node) not in covered_racks:
                return node
        return candidates[0]
