"""Simulated HDFS: namespace, rack-aware replica placement, timed data path."""

from .block import Block, HdfsFile, InputSplit
from .client import HdfsClient
from .datanode import DataNodeDaemon, ReplicationManager
from .namenode import HdfsError, NameNode
from .splits import compute_splits, total_input_mb

__all__ = [
    "Block",
    "DataNodeDaemon",
    "HdfsClient",
    "HdfsError",
    "HdfsFile",
    "InputSplit",
    "NameNode",
    "ReplicationManager",
    "compute_splits",
    "total_input_mb",
]
