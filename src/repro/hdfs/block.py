"""HDFS data records: blocks, files, input splits."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Block:
    """One HDFS block and the DataNodes holding its replicas.

    ``replicas[0]`` is the primary (first-written) copy; the order matters to
    the placement tests but readers always pick the *closest* replica.
    """

    block_id: int
    path: str
    size_mb: float
    replicas: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError("block size cannot be negative")

    def hosted_on(self, node_id: str) -> bool:
        return node_id in self.replicas


@dataclass
class HdfsFile:
    """A file in the simulated namespace: an ordered list of blocks."""

    path: str
    blocks: list[Block] = field(default_factory=list)

    @property
    def size_mb(self) -> float:
        return sum(b.size_mb for b in self.blocks)


@dataclass(frozen=True)
class InputSplit:
    """A contiguous chunk of one file processed by a single map task."""

    path: str
    split_index: int
    offset_mb: float
    length_mb: float
    hosts: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.length_mb < 0 or self.offset_mb < 0:
            raise ValueError("split geometry cannot be negative")
