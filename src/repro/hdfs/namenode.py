"""The NameNode: namespace plus the default rack-aware placement policy."""

from __future__ import annotations

import itertools
import random
from typing import Optional

from ..cluster.topology import Topology
from .block import Block, HdfsFile


class HdfsError(Exception):
    """Namespace-level failure (missing path, duplicate create, ...)."""


class NameNode:
    """Namespace owner and replica placer.

    Placement follows the HDFS default the paper describes (§III-A): first
    replica on the writer's node (or a random node for off-cluster writers),
    second on a node in a *different* rack, third on a *different node in
    that same remote rack*. Extra replicas (replication > 3) go to random
    nodes without duplicates.
    """

    def __init__(self, topology: Topology, block_size_mb: float = 64.0,
                 replication: int = 3, seed: int = 7) -> None:
        if block_size_mb <= 0:
            raise ValueError("block size must be positive")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.topology = topology
        self.block_size_mb = block_size_mb
        self.replication = replication
        self._seed = seed
        #: Draws that are not tied to a file path (e.g. re-replication
        #: targets) come from this stream; per-file placement must not —
        #: see :meth:`_file_rng`.
        self._rng = random.Random(seed)
        self._files: dict[str, HdfsFile] = {}
        self._block_ids = itertools.count(1)

    # -- namespace ------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def get_file(self, path: str) -> HdfsFile:
        try:
            return self._files[path]
        except KeyError:
            raise HdfsError(f"no such file: {path}") from None

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise HdfsError(f"no such file: {path}")
        del self._files[path]

    def list_files(self) -> list[str]:
        return sorted(self._files)

    # -- creation ---------------------------------------------------------------
    def create_file(self, path: str, size_mb: float,
                    writer_node: Optional[str] = None) -> HdfsFile:
        """Allocate blocks + replicas for a new file of ``size_mb``.

        This is the metadata operation only; actually moving bytes is the
        client's job (:meth:`repro.hdfs.client.HdfsClient.write_file`).
        """
        if path in self._files:
            raise HdfsError(f"file exists: {path}")
        if size_mb < 0:
            raise ValueError("size cannot be negative")
        file = HdfsFile(path)
        rng = self._file_rng(path)
        remaining = size_mb
        while remaining > 0 or not file.blocks:
            chunk = min(self.block_size_mb, remaining) if remaining > 0 else 0.0
            block = Block(next(self._block_ids), path, chunk,
                          replicas=self._place_replicas(writer_node, rng))
            file.blocks.append(block)
            remaining -= chunk
            if chunk == 0:
                break
        self._files[path] = file
        return file

    def _file_rng(self, path: str) -> random.Random:
        """Placement stream for one file: a pure function of (seed, path).

        Drawing replica targets from the shared ``_rng`` would make a
        file's block locations depend on how many files happened to be
        created before it — so two jobs whose inputs load at the same
        simulated instant would swap placements under a different kernel
        tie-break (the ``--sanitize-races`` hazard). Seeding per path keeps
        placement independent of creation order. String seeding hashes the
        text deterministically (no ``PYTHONHASHSEED`` dependence).
        """
        return random.Random(f"{self._seed}:{path}")

    def _place_replicas(self, writer_node: Optional[str],
                        rng: Optional[random.Random] = None) -> list[str]:
        rng = rng if rng is not None else self._rng
        nodes = self.topology.node_ids
        want = min(self.replication, len(nodes))

        if writer_node is not None and writer_node in self.topology:
            first = writer_node
        else:
            first = rng.choice(nodes)
        replicas = [first]

        if want >= 2:
            remote_rack_nodes = [n for n in nodes if self.topology.rack_of(n) != self.topology.rack_of(first)]
            if remote_rack_nodes:
                second = rng.choice(remote_rack_nodes)
            else:  # single-rack cluster: any other node
                others = [n for n in nodes if n != first]
                second = rng.choice(others)
            replicas.append(second)

        if want >= 3:
            same_remote = [
                n for n in nodes
                if n not in replicas and self.topology.rack_of(n) == self.topology.rack_of(replicas[1])
            ]
            pool = same_remote or [n for n in nodes if n not in replicas]
            replicas.append(rng.choice(pool))

        while len(replicas) < want:
            pool = [n for n in nodes if n not in replicas]
            replicas.append(rng.choice(pool))
        return replicas

    # -- queries used by schedulers ------------------------------------------------
    def block_locations(self, path: str) -> list[tuple[Block, list[str]]]:
        return [(b, list(b.replicas)) for b in self.get_file(path).blocks]

    def blocks_on_node(self, node_id: str) -> list[Block]:
        return [
            b for f in self._files.values() for b in f.blocks if b.hosted_on(node_id)
        ]

    def under_replicated(self) -> list[Block]:
        """Blocks with fewer live replicas than the target factor.

        The fsck-style health view: non-empty after a DataNode loss, drains
        back to empty as the ReplicationManager restores the factors.
        """
        return [
            b for f in self._files.values() for b in f.blocks
            if b.size_mb > 0 and 0 < len(b.replicas) < self.replication
        ]
