"""HDFS data-path client: timed reads and writes over disks + network.

Reads stream from the closest replica: the replica's disk read and the
network hop (when remote) run concurrently, approximating HDFS's pipelined
``DataXceiver`` streaming — the slower stage dominates. Writes pipeline to
every replica.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..cluster.network import ClusterNetwork
from ..cluster.topology import Topology
from .block import Block, InputSplit
from .namenode import HdfsError, NameNode

if TYPE_CHECKING:  # pragma: no cover
    from ..simulation.core import Environment
    from ..simulation.events import Event


class HdfsClient:
    """Performs timed HDFS I/O for a caller located on some node."""

    def __init__(self, env: "Environment", namenode: NameNode,
                 network: ClusterNetwork, topology: Topology) -> None:
        self.env = env
        self.namenode = namenode
        self.network = network
        self.topology = topology

    # -- reads --------------------------------------------------------------
    def read_block(self, block: Block, at_node: str) -> Generator:
        """Read one block to ``at_node``; yields until the data has arrived.

        Returns the replica node the data came from (useful for locality
        accounting in tests and the profiler).
        """
        source = self.topology.closest_replica(at_node, block.replicas)
        if source is None:
            raise HdfsError(f"block {block.block_id} has no live replicas")
        if block.size_mb <= 0:
            return source
        disk = self.topology.node(source).disk.read(block.size_mb, label=f"blk{block.block_id}")
        if source == at_node:
            yield disk.done
        else:
            net = self.network.transfer(source, at_node, block.size_mb,
                                        label=f"blk{block.block_id}")
            yield disk.done & net.done
        return source

    def read_split(self, split: InputSplit, at_node: str) -> Generator:
        """Read a map task's input split (resides within one block)."""
        file = self.namenode.get_file(split.path)
        block = file.blocks[split.split_index] if split.split_index < len(file.blocks) else None
        if block is None:
            raise HdfsError(f"split {split.split_index} out of range for {split.path}")
        source = self.topology.closest_replica(at_node, block.replicas)
        if source is None:
            raise HdfsError(f"block {block.block_id} has no live replicas")
        if split.length_mb <= 0:
            return source
        disk = self.topology.node(source).disk.read(split.length_mb, label="split")
        if source == at_node:
            yield disk.done
        else:
            net = self.network.transfer(source, at_node, split.length_mb, label="split")
            yield disk.done & net.done
        return source

    def read_file(self, path: str, at_node: str) -> Generator:
        """Read a whole file block-by-block (sequentially, like a scan)."""
        file = self.namenode.get_file(path)
        sources = []
        for block in file.blocks:
            source = yield from self.read_block(block, at_node)
            sources.append(source)
        return sources

    # -- writes ---------------------------------------------------------------
    def write_file(self, path: str, size_mb: float, at_node: str) -> Generator:
        """Create and persist a file, pipelining each block to its replicas."""
        file = self.namenode.create_file(path, size_mb, writer_node=at_node)
        for block in file.blocks:
            if block.size_mb <= 0:
                continue
            waits: list["Event"] = []
            for replica in block.replicas:
                disk = self.topology.node(replica).disk.write(block.size_mb,
                                                              label=f"blk{block.block_id}")
                waits.append(disk.done)
                if replica != at_node:
                    net = self.network.transfer(at_node, replica, block.size_mb,
                                                label=f"repl{block.block_id}")
                    waits.append(net.done)
            yield self.env.all_of(waits)
        return file

    def upload_small(self, path: str, size_mb: float, at_node: str) -> Generator:
        """Upload a small artifact (job jar / conf); single-replica fast path."""
        file = self.namenode.create_file(path, size_mb, writer_node=at_node)
        for block in file.blocks:
            if block.size_mb <= 0:
                continue
            primary = block.replicas[0]
            disk = self.topology.node(primary).disk.write(block.size_mb, label="jobfile")
            if primary != at_node:
                net = self.network.transfer(at_node, primary, block.size_mb, label="jobfile")
                yield disk.done & net.done
            else:
                yield disk.done
        return file
