"""Input-split computation (FileInputFormat.getSplits equivalent).

One split per block, exactly as Hadoop computes them for splittable text
input with the default ``minSplitSize``/``maxSplitSize``. The paper's
workloads always use files at or below one block, so #splits == #files
there, but multi-block files are supported (and tested) too.
"""

from __future__ import annotations

from typing import Iterable

from .block import InputSplit
from .namenode import NameNode


def compute_splits(namenode: NameNode, paths: Iterable[str]) -> list[InputSplit]:
    """Compute splits for ``paths`` in a deterministic, Hadoop-like order."""
    splits: list[InputSplit] = []
    for path in paths:
        file = namenode.get_file(path)
        offset = 0.0
        for index, block in enumerate(file.blocks):
            splits.append(
                InputSplit(
                    path=path,
                    split_index=index,
                    offset_mb=offset,
                    length_mb=block.size_mb,
                    hosts=tuple(block.replicas),
                )
            )
            offset += block.size_mb
    return splits


def total_input_mb(splits: Iterable[InputSplit]) -> float:
    return sum(s.length_mb for s in splits)
