"""Continuous cluster telemetry: sim-time series, exporters, alerting.

The missing middle between PR 3's per-job tracing and PR 5's end-of-run
``LoadReport``: a long replay is observable *while it runs*. The pieces:

* :mod:`.instruments` — counters/gauges/histograms in a registry; push
  sites guard on ``env.telemetry is not None`` (tracer discipline), pull
  instruments wrap cheap reads of state the cluster maintains anyway;
* :mod:`.scraper` — samples the registry on a simulated-time grid from
  the kernel's event-pop hook, so enabling telemetry adds **zero events**
  and cannot perturb event order (the sanitizer gates on digest equality
  with the telemetry-off run);
* :mod:`.openmetrics` — OpenMetrics text + JSONL exporters;
* :mod:`.alerts` — edge-triggered rules over the ring buffers, headlined
  by multi-window SLO burn-rate (Google SRE style);
* :mod:`.probes` — the utilization probe shared with
  :class:`repro.metrics.ClusterMonitor` so exactly one code path computes
  the paper's imbalance quantities.

Enable with ``HadoopConfig(telemetry=TelemetryConfig())`` (the replay
driver installs it) or :func:`install_telemetry` directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..config import TelemetryConfig
from .alerts import (Alert, AlertEngine, AlertSummary, BurnRateRule,
                     HeartbeatStalenessRule, QueueSaturationRule, Rule,
                     UnderReplicationRule)
from .instruments import (Counter, Gauge, Histogram, LabelSet,
                          TelemetryRegistry)
from .openmetrics import parse_openmetrics, render_jsonl, render_openmetrics
from .probes import UtilizationSample, sample_utilization
from .scraper import RingSeries, Scraper

if TYPE_CHECKING:  # pragma: no cover
    from ..serving.runtime import ServingRuntime
    from ..simcluster import SimCluster

__all__ = [
    "Alert", "AlertEngine", "AlertSummary", "BurnRateRule", "Counter",
    "Gauge", "HeartbeatStalenessRule", "Histogram", "QueueSaturationRule",
    "RingSeries", "Rule", "Scraper", "Telemetry", "TelemetryConfig",
    "TelemetryRegistry", "UnderReplicationRule", "UtilizationSample",
    "install_telemetry", "parse_openmetrics", "render_jsonl",
    "render_openmetrics", "sample_utilization",
]

#: Bucket bounds for the sub-minute YARN latencies (grant delay, AM wait).
_WAIT_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                 10.0, 30.0, 60.0, 120.0)

#: Series mirrored into ``LoadReport.telemetry["windows"]`` for
#: ``repro trace --json`` (satellite: per-window attainment/queue depth).
_WINDOW_SERIES = ("serving_attainment_recent", "serving_pending_jobs",
                  "serving_running_jobs", "cluster_cpu_utilization")


class _NodeProbeCache:
    """One shared pass for every O(nodes) gauge, at its own slower cadence.

    Per-node utilization, per-rack liveness, heartbeat staleness, and the
    most-loaded fabric link each cost a full walk of the cluster (links
    scale with nodes); at 10k nodes and a 1 s scrape cadence those walks
    would dominate replay wall time. They also move slowly, so
    (standard practice for expensive collectors) the cache recomputes at
    most every ``interval_s`` of *simulated* time — intermediate scrapes
    re-export the cached values. Reads within one kernel state
    (``env.events_processed`` unchanged) are always mutually consistent.
    """

    def __init__(self, cluster: "SimCluster", stale_after_s: float,
                 interval_s: float) -> None:
        self.cluster = cluster
        self.stale_after_s = stale_after_s
        self.interval_s = interval_s
        self._key = -1
        self._last_t = 0.0
        self.sample: Optional[UtilizationSample] = None
        self.rack_alive: dict[str, int] = {}
        self.rack_registered: dict[str, int] = {}
        self.stale = 0
        self.max_link = 0.0

    def get(self) -> "_NodeProbeCache":
        env = self.cluster.env
        key = env.events_processed
        if key == self._key:
            return self
        if self.sample is not None and env.now - self._last_t < self.interval_s:
            return self
        self._key = key
        self._last_t = env.now
        self.sample = sample_utilization(self.cluster)
        states = self.cluster.rm.nodes
        now = env.now
        stale = 0
        for rack in self.cluster.topology.racks:
            alive = registered = 0
            for node in self.cluster.topology.nodes_in_rack(rack):
                st = states.get(node.node_id)
                if st is None:
                    continue
                registered += 1
                if st.alive:
                    alive += 1
                    if now - st.last_heartbeat > self.stale_after_s:
                        stale += 1
            self.rack_alive[rack] = alive
            self.rack_registered[rack] = registered
        self.stale = stale
        # Only links carrying an active flow can have nonzero utilization,
        # so walk flow paths instead of the full link table — zero cost on
        # an idle fabric, and private per-flow cap links (not real fabric
        # links) never masquerade as the most-loaded link.
        fabric = self.cluster.network.fabric
        best = 0.0
        seen: set[str] = set()
        for flow in fabric.active_flows:
            for link in flow.path:
                if link not in seen:
                    seen.add(link)
                    util = fabric.utilization(link)
                    if util > best:
                        best = util
        self.max_link = best
        return self


class Telemetry:
    """Facade owning the registry, scraper, and alert engine for a cluster."""

    def __init__(self, cluster: "SimCluster",
                 config: Optional[TelemetryConfig] = None) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.config = config or cluster.conf.telemetry or TelemetryConfig()
        self.registry = TelemetryRegistry()
        self.scraper = Scraper(
            self.env, self.registry,
            interval_s=self.config.scrape_interval_s,
            retention=self.config.retention_samples,
            catchup_limit=self.config.catchup_limit)
        self.runtime: Optional["ServingRuntime"] = None
        # Push-site instruments (guarded by ``env.telemetry is not None``).
        self.grant_delay = self.registry.histogram(
            "scheduler_grant_delay", "Queue delay between a container "
            "request entering the scheduler and its grant.", unit="seconds",
            bounds=_WAIT_BUCKETS)
        self.am_alloc_wait = self.registry.histogram(
            "yarn_am_alloc_wait", "Wait from application submission to AM "
            "container allocation.", unit="seconds", bounds=_WAIT_BUCKETS)
        self._register_standard()
        self.engine: Optional[AlertEngine] = None
        if self.config.alerts:
            self.engine = AlertEngine(self.env, self.scraper, [
                HeartbeatStalenessRule(),
                UnderReplicationRule(self.config.under_replication_samples),
            ])

    # -- standard instruments ------------------------------------------------
    def _register_standard(self) -> None:
        cluster, env, conf = self.cluster, self.env, self.config
        rm = cluster.rm
        reg = self.registry

        # kernel
        reg.counter("kernel_events", "Events dispatched by the simulation "
                    "kernel.", fn=lambda: env.events_processed)
        for key, help_text in (
                ("pending", "Entries held by the calendar event queue."),
                ("occupied_buckets", "Calendar buckets currently occupied."),
                ("max_bucket_depth", "Deepest single calendar bucket."),
                ("cancelled_outstanding",
                 "Lazy-cancel tombstones awaiting their pop.")):
            reg.gauge(f"kernel_queue_{key}", help_text,
                      fn=lambda k=key: env.queue_stats()[k])

        # RM / scheduler
        reg.gauge("rm_pending_apps", "Applications waiting in the RM's AM "
                  "admission queue.", fn=lambda: len(rm._am_queue))
        reg.gauge("rm_memory_used_mb", "Scheduled memory across the cluster.",
                  unit="mb", fn=lambda: rm.total_used().memory_mb)
        reg.gauge("rm_memory_capability_mb", "Total registered memory.",
                  unit="mb", fn=lambda: rm.total_capability().memory_mb)
        reg.gauge("rm_vcores_used", "Scheduled vcores across the cluster.",
                  fn=lambda: rm.total_used().vcores)
        reg.gauge("rm_vcores_capability", "Total registered vcores.",
                  fn=lambda: rm.total_capability().vcores)
        wheel = rm.heartbeat_wheel
        if wheel is not None:
            reg.counter("rm_heartbeats", "NodeManager heartbeats delivered "
                        "through the wheel.",
                        fn=lambda: wheel.heartbeats_delivered)
            reg.counter("rm_wheel_ticks", "Aggregate wheel tick events (one "
                        "may deliver a whole cohort's beats).",
                        fn=lambda: wheel.ticks)

        # NodeManagers, aggregated per rack so 10k nodes stay bounded. All
        # O(nodes) quantities share one cached walk at its own cadence.
        stale_after = conf.heartbeat_stale_factor * cluster.conf.nm_heartbeat_s
        probe = self._probe = _NodeProbeCache(
            cluster, stale_after, conf.node_probe_interval_s)
        topology = cluster.topology
        for rack in sorted(topology.racks):
            reg.gauge("nodes_alive", "Registered nodes alive in this rack.",
                      labels={"rack": rack},
                      fn=lambda r=rack: probe.get().rack_alive.get(r, 0))
            reg.gauge("nodes_registered", "Registered nodes in this rack.",
                      labels={"rack": rack},
                      fn=lambda r=rack: probe.get().rack_registered.get(r, 0))
        reg.gauge("nodes_heartbeat_stale", "Alive nodes silent for more than "
                  f"{conf.heartbeat_stale_factor:g}x the heartbeat interval.",
                  fn=lambda: probe.get().stale)

        # fabric / network
        fabric = cluster.network.fabric
        reg.gauge("fabric_active_flows", "Flows in flight on the shared "
                  "fabric.", fn=lambda: len(fabric.active_flows))
        reg.gauge("fabric_max_link_utilization", "Most-loaded fabric link "
                  "(0..1).", fn=lambda: probe.get().max_link)

        # HDFS
        reg.gauge("hdfs_under_replicated_blocks", "Blocks below their "
                  "replication target.",
                  fn=lambda: len(cluster.namenode.under_replicated()))

        # cluster utilization (shared probe with ClusterMonitor)
        reg.gauge("cluster_cpu_utilization", "Cluster-wide CPU utilization "
                  "(0..1).", fn=lambda: probe.get().sample.cluster_cpu)
        reg.gauge("cluster_cpu_imbalance", "Max-min per-node CPU utilization "
                  "(the paper's imbalance index).",
                  fn=lambda: probe.get().sample.cpu_imbalance)
        reg.gauge("cluster_disk_imbalance", "Max-min per-node active disk "
                  "ops.", fn=lambda: probe.get().sample.disk_imbalance)
        reg.gauge("cluster_scheduled_memory_fraction", "Scheduled fraction "
                  "of cluster memory (0..1).",
                  fn=lambda: probe.get().sample.scheduled_memory_fraction)
        reg.gauge("cluster_used_vcores", "Scheduled vcores (ClusterMonitor "
                  "series).", fn=lambda: probe.get().sample.used_vcores)

    # -- serving attachment --------------------------------------------------
    def attach_serving(self, runtime: "ServingRuntime") -> None:
        """Register serving-stack instruments and the SLO alert rules."""
        if self.runtime is not None:
            if self.runtime is runtime:
                return
            raise ValueError("telemetry is already attached to another "
                             "serving runtime")
        self.runtime = runtime
        reg = self.registry
        helps = {
            "latency_jobs": "Latency-class arrivals resolved.",
            "batch_jobs": "Batch-class arrivals resolved.",
            "admitted": "Submissions admitted.",
            "downgraded": "Latency jobs demoted to batch at admission.",
            "rejected": "Submissions rejected terminally.",
            "shed": "Pending jobs evicted under overload.",
            "retries": "Rejected submissions retried after backoff.",
            "deadline_met": "Latency jobs finishing within deadline.",
            "deadline_missed": "Latency jobs finishing late.",
            "batch_completed": "Batch jobs completed.",
        }
        for key, help_text in helps.items():
            reg.counter(f"serving_{key}", help_text,
                        fn=lambda k=key: runtime.counts[k])
        reg.gauge("serving_pending_jobs", "Admitted jobs awaiting dispatch.",
                  fn=lambda: runtime.pending_count)
        reg.gauge("serving_running_jobs", "Jobs holding a serving slot.",
                  fn=lambda: runtime.running_count)
        reg.gauge("serving_healthy_nodes", "Nodes neither failed nor "
                  "drained.", fn=lambda: runtime.healthy_nodes())
        reg.gauge("serving_attainment_recent", "Windowed latency-SLO "
                  "attainment (autoscaler signal).",
                  fn=lambda: runtime.recent_attainment())
        reg.gauge("serving_attainment_cumulative", "Cumulative latency-SLO "
                  "attainment.", fn=lambda: runtime.attainment.fraction)
        if runtime.autoscaler is not None:
            autoscaler = runtime.autoscaler
            reg.gauge("serving_billable_nodes", "Nodes currently billed "
                      "(includes crashed-but-paid).",
                      fn=lambda: autoscaler.billable_count())
        if self.engine is not None:
            conf = self.config
            self.engine.rules.append(BurnRateRule(
                conf.slo_target, conf.burn_fast_window_s,
                conf.burn_slow_window_s, conf.burn_threshold))
            self.engine.rules.append(QueueSaturationRule(
                runtime.serving.max_pending, conf.queue_saturation_fraction,
                conf.queue_saturation_samples))

    # -- lifecycle -----------------------------------------------------------
    def install(self) -> None:
        self.env.telemetry = self
        self.scraper.install()

    def finish(self) -> None:
        """Close out at end of run: one final sample, then release the
        kernel sampler slot.

        Without the uninstall the environment's single ``env.sampler``
        slot stays occupied forever, so installing telemetry on the same
        environment again — a second replay on a long-lived cluster —
        raises ``RuntimeError`` from :meth:`Scraper.install` (MR203:
        ``Scraper.install`` without ``uninstall`` anywhere).
        """
        self.scraper.final_scrape()
        # Release the slot only; ``env.telemetry`` stays set so post-run
        # exports (openmetrics/jsonl/report_section) keep working.
        self.scraper.uninstall()

    # -- exports -------------------------------------------------------------
    def openmetrics(self) -> str:
        return render_openmetrics(self.registry)

    def jsonl(self) -> str:
        return render_jsonl(self.scraper)

    def series(self, name: str,
               labels: LabelSet | dict[str, str] = ()) -> Optional[RingSeries]:
        return self.scraper.series(name, labels)

    def alerts(self) -> list[Alert]:
        return self.engine.alerts if self.engine is not None else []

    def report_section(self, digits: int = 6) -> dict:
        """The ``telemetry`` section of :class:`repro.trace.LoadReport`."""
        scraper = self.scraper
        out: dict = {
            "scrape_interval_s": round(scraper.interval_s, digits),
            "scrapes": scraper.scrapes_done,
            "samples_skipped": scraper.samples_skipped,
            "series": len(scraper.all_series()),
            "retained_samples": scraper.retained_samples(),
            "ring_bytes": scraper.ring_bytes_estimate(),
        }
        if self.engine is not None:
            summary = AlertSummary.of(self.engine)
            out["alerts"] = self.engine.to_rows(digits)
            out["alerts_fired"] = summary.fired
            out["alerts_by_rule"] = summary.by_rule
        windows = {}
        for name in _WINDOW_SERIES:
            ring = scraper.series(name)
            if ring is not None and len(ring):
                windows[name] = ring.to_dict(digits)
        if windows:
            out["windows"] = windows
        return out


def install_telemetry(cluster: "SimCluster",
                      config: Optional[TelemetryConfig] = None) -> Telemetry:
    """Create, install, and return a :class:`Telemetry` for ``cluster``.

    Idempotent per environment: if telemetry is already installed, the
    existing facade is returned (so a driver and a caller who both enable
    it share one registry).
    """
    existing = cluster.env.telemetry
    if existing is not None:
        return existing
    telemetry = Telemetry(cluster, config)
    telemetry.install()
    return telemetry
