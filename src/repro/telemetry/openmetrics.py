"""OpenMetrics text rendering (and a parser for conformance tests) + JSONL.

The renderer follows the OpenMetrics text format: one ``# TYPE`` /
``# UNIT`` / ``# HELP`` header block per metric family, ``_total``-suffixed
counter samples, cumulative ``_bucket{le="..."}`` / ``_sum`` / ``_count``
histogram samples, escaped label values, and a mandatory ``# EOF``
terminator. Families render in registration order and label sets are
pre-sorted tuples, so the output is byte-stable across hash seeds — the
telemetry-smoke CI job sha256-compares two differently-seeded runs.

:func:`parse_openmetrics` is a deliberately strict reader used by the
round-trip conformance tests (and nothing else); it understands exactly
the subset the renderer emits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .instruments import Counter, Gauge, Histogram, LabelSet, TelemetryRegistry

if TYPE_CHECKING:  # pragma: no cover
    from .scraper import Scraper


def _format_value(v: float) -> str:
    if v != v:  # NaN
        return "NaN"
    if v == float("inf"):
        return "+Inf"
    if v == float("-inf"):
        return "-Inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: LabelSet, extra: str = "") -> str:
    parts = [f'{k}="{escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.insert(0, extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_openmetrics(registry: TelemetryRegistry) -> str:
    """The registry's current state as OpenMetrics text."""
    lines: list[str] = []
    for name, instruments in registry.families():
        head = instruments[0]
        lines.append(f"# TYPE {name} {head.kind}")
        if head.unit:
            lines.append(f"# UNIT {name} {head.unit}")
        lines.append(f"# HELP {name} {_escape_help(head.help)}")
        for inst in instruments:
            if isinstance(inst, Counter):
                lines.append(f"{name}_total{_render_labels(inst.labels)} "
                             f"{_format_value(inst.value)}")
            elif isinstance(inst, Gauge):
                lines.append(f"{name}{_render_labels(inst.labels)} "
                             f"{_format_value(inst.value)}")
            elif isinstance(inst, Histogram):
                for le, cum in inst.cumulative():
                    bucket = _render_labels(
                        inst.labels, extra=f'le="{_format_value(le)}"')
                    lines.append(f"{name}_bucket{bucket} {cum}")
                lines.append(f"{name}_sum{_render_labels(inst.labels)} "
                             f"{_format_value(inst.sum)}")
                lines.append(f"{name}_count{_render_labels(inst.labels)} "
                             f"{inst.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- conformance parser --------------------------------------------------------

@dataclass
class ParsedFamily:
    """One metric family as read back from OpenMetrics text."""

    name: str
    kind: str = ""
    unit: str = ""
    help: str = ""
    #: (sample name incl. suffix, labels dict, value)
    samples: list[tuple[str, dict[str, str], float]] = field(default_factory=list)


def _parse_value(token: str) -> float:
    if token == "+Inf":
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    return float(token)


def _parse_labels(body: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq]
        if body[eq + 1] != '"':
            raise ValueError(f"unquoted label value at {body[eq:]!r}")
        j = eq + 2
        out: list[str] = []
        while True:
            ch = body[j]
            if ch == "\\":
                nxt = body[j + 1]
                out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
                j += 2
            elif ch == '"':
                break
            else:
                out.append(ch)
                j += 1
        labels[key] = "".join(out)
        i = j + 1
        if i < len(body):
            if body[i] != ",":
                raise ValueError(f"expected ',' in labels at {body[i:]!r}")
            i += 1
    return labels


def _family_of(sample_name: str, families: dict[str, ParsedFamily]) -> str:
    for suffix in ("_total", "_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
            return sample_name[: -len(suffix)]
    return sample_name


def parse_openmetrics(text: str) -> dict[str, ParsedFamily]:
    """Strict reader for the renderer's output (conformance tests only)."""
    families: dict[str, ParsedFamily] = {}
    saw_eof = False
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if saw_eof:
            raise ValueError("content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# "):
            _, keyword, name, rest = line.split(" ", 3) if line.count(" ") >= 3 \
                else (*line.split(" ", 2), "")
            family = families.setdefault(name, ParsedFamily(name))
            if keyword == "TYPE":
                family.kind = rest
            elif keyword == "UNIT":
                family.unit = rest
            elif keyword == "HELP":
                family.help = rest.replace("\\n", "\n").replace("\\\\", "\\")
            else:
                raise ValueError(f"unknown comment keyword {keyword!r}")
            continue
        if "{" in line:
            name = line[: line.index("{")]
            body = line[line.index("{") + 1: line.rindex("}")]
            value_token = line[line.rindex("}") + 1:].strip()
            labels = _parse_labels(body)
        else:
            name, value_token = line.rsplit(" ", 1)
            labels = {}
        family = families.get(_family_of(name, families))
        if family is None:
            raise ValueError(f"sample {name!r} before its # TYPE line")
        family.samples.append((name, labels, _parse_value(value_token)))
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return families


# -- JSONL ---------------------------------------------------------------------

def render_jsonl(scraper: Scraper) -> str:
    """Ring-buffer contents as JSON Lines: one object per retained sample.

    Series appear in first-scrape order and samples oldest-first, so the
    output is byte-stable for a given run.
    """
    lines: list[str] = []
    for ring in scraper.all_series():
        labels = dict(ring.labels)
        for t, v in zip(ring.times, ring.values):
            lines.append(json.dumps(
                {"metric": ring.name, "labels": labels,
                 "t": round(t, 6), "value": round(v, 6)},
                sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")
