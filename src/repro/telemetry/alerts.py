"""Alert rules evaluated over the telemetry ring buffers.

Rules run after every scrape (the scraper's ``on_scrape`` hook) and are
edge-triggered: an alert fires when its condition transitions false→true
and resolves when it transitions back, so a sustained outage produces one
row, not one per scrape. Fired alerts are appended to
:attr:`AlertEngine.alerts` (surfacing in ``LoadReport`` and the CLI) and,
when a tracer is installed, emitted as trace instants so they overlay the
span timeline in Perfetto.

The SLO rule implements Google-SRE-style multi-window burn-rate alerting:
with an error budget of ``1 - slo_target``, the *burn rate* over a window
is the window's error fraction divided by the budget (1.0 = consuming the
budget exactly as fast as the SLO tolerates). Firing requires the rate to
exceed the threshold over **both** a fast and a slow window — the fast
window gives low detection latency, the slow window keeps one bad scrape
from paging. Counters start at zero, so a window that reaches past the
start of the run uses an exact zero baseline rather than extrapolating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .scraper import RingSeries, Scraper

if TYPE_CHECKING:  # pragma: no cover
    from ..simulation.core import Environment

SEV_WARNING = "warning"
SEV_CRITICAL = "critical"


@dataclass
class Alert:
    """One firing of a rule (resolution recorded in place when observed)."""

    rule: str
    severity: str
    at_s: float
    message: str
    value: float
    resolved_at_s: Optional[float] = None

    def to_dict(self, digits: int = 6) -> dict:
        out = {"rule": self.rule, "severity": self.severity,
               "at_s": round(self.at_s, digits),
               "value": round(self.value, digits),
               "message": self.message}
        if self.resolved_at_s is not None:
            out["resolved_at_s"] = round(self.resolved_at_s, digits)
        return out


class Rule:
    """Base: subclasses answer "is the condition true at scrape time t?"."""

    name = "rule"
    severity = SEV_WARNING

    def check(self, t: float, scraper: Scraper) -> tuple[bool, float, str]:
        raise NotImplementedError


def _counter_delta(series: Optional[RingSeries], t: float,
                   window_s: float) -> Optional[float]:
    """Increase of a monotonic counter over ``[t - window, t]``."""
    if series is None or not series.times:
        return None
    now_v = series.value_at_or_before(t)
    if now_v is None:
        return None
    base = series.value_at_or_before(t - window_s)
    return now_v - (base if base is not None else 0.0)


class BurnRateRule(Rule):
    """Error budget burning >= threshold× sustainable over both windows."""

    name = "slo_burn_rate"
    severity = SEV_CRITICAL

    def __init__(self, slo_target: float, fast_window_s: float,
                 slow_window_s: float, threshold: float) -> None:
        if not 0.0 < slo_target < 1.0:
            raise ValueError(f"slo_target must be in (0, 1), got {slo_target}")
        self.budget = 1.0 - slo_target
        self.fast_window_s = fast_window_s
        self.slow_window_s = slow_window_s
        self.threshold = threshold

    def burn_rate(self, t: float, scraper: Scraper, window_s: float) -> float:
        met = _counter_delta(scraper.series("serving_deadline_met"), t, window_s)
        missed = _counter_delta(
            scraper.series("serving_deadline_missed"), t, window_s)
        if met is None or missed is None:
            return 0.0
        total = met + missed
        if total <= 0:
            return 0.0
        return (missed / total) / self.budget

    def check(self, t: float, scraper: Scraper) -> tuple[bool, float, str]:
        fast = self.burn_rate(t, scraper, self.fast_window_s)
        slow = self.burn_rate(t, scraper, self.slow_window_s)
        firing = fast >= self.threshold and slow >= self.threshold
        message = (f"SLO error budget burning {fast:.1f}x over "
                   f"{self.fast_window_s:.0f}s and {slow:.1f}x over "
                   f"{self.slow_window_s:.0f}s (threshold {self.threshold:.1f}x)")
        return firing, min(fast, slow), message


class QueueSaturationRule(Rule):
    """Admission queue at >= ``fraction`` of max_pending for N scrapes."""

    name = "queue_saturation"
    severity = SEV_WARNING

    def __init__(self, max_pending: int, fraction: float, samples: int) -> None:
        self.max_pending = max(1, max_pending)
        self.fraction = fraction
        self.samples = max(1, samples)

    def check(self, t: float, scraper: Scraper) -> tuple[bool, float, str]:
        series = scraper.series("serving_pending_jobs")
        if series is None or len(series) < self.samples:
            return False, 0.0, ""
        recent = list(series.values)[-self.samples:]
        fractions = [v / self.max_pending for v in recent]
        firing = all(f >= self.fraction for f in fractions)
        value = fractions[-1]
        message = (f"admission queue at {value:.0%} of max_pending="
                   f"{self.max_pending} for {self.samples} scrapes")
        return firing, value, message


class HeartbeatStalenessRule(Rule):
    """Any live node silent for > stale_factor × heartbeat interval."""

    name = "heartbeat_staleness"
    severity = SEV_WARNING

    def check(self, t: float, scraper: Scraper) -> tuple[bool, float, str]:
        series = scraper.series("nodes_heartbeat_stale")
        if series is None:
            return False, 0.0, ""
        stale = series.last() or 0.0
        return stale > 0, stale, f"{stale:.0f} node(s) heartbeat-stale"


class UnderReplicationRule(Rule):
    """HDFS under-replicated blocks outstanding for N consecutive scrapes."""

    name = "hdfs_under_replication"
    severity = SEV_WARNING

    def __init__(self, samples: int) -> None:
        self.samples = max(1, samples)

    def check(self, t: float, scraper: Scraper) -> tuple[bool, float, str]:
        series = scraper.series("hdfs_under_replicated_blocks")
        if series is None or len(series) < self.samples:
            return False, 0.0, ""
        recent = list(series.values)[-self.samples:]
        firing = all(v > 0 for v in recent)
        return firing, recent[-1], (
            f"{recent[-1]:.0f} under-replicated block(s) for "
            f"{self.samples} scrapes")


class AlertEngine:
    """Evaluates rules on every scrape; edge-triggers alert rows."""

    def __init__(self, env: Environment, scraper: Scraper,
                 rules: list[Rule]) -> None:
        self.env = env
        self.scraper = scraper
        self.rules = rules
        self.alerts: list[Alert] = []
        self._active: dict[str, Alert] = {}
        self.evaluations = 0
        scraper.on_scrape.append(self.evaluate)

    def evaluate(self, t: float) -> None:
        self.evaluations += 1
        for rule in self.rules:
            firing, value, message = rule.check(t, self.scraper)
            active = self._active.get(rule.name)
            if firing and active is None:
                alert = Alert(rule.name, rule.severity, t, message, value)
                self.alerts.append(alert)
                self._active[rule.name] = alert
                tracer = self.env.tracer
                if tracer is not None:
                    from ..observe.tracer import CLUSTER
                    tracer.instant(f"alert:{rule.name}", "alert", CLUSTER,
                                   "alerts", severity=rule.severity,
                                   value=round(value, 6), message=message)
            elif not firing and active is not None:
                active.resolved_at_s = t
                del self._active[rule.name]

    def first(self, rule_name: str) -> Optional[Alert]:
        for alert in self.alerts:
            if alert.rule == rule_name:
                return alert
        return None

    def to_rows(self, digits: int = 6) -> list[dict]:
        return [a.to_dict(digits) for a in self.alerts]


@dataclass
class AlertSummary:
    """Aggregate of one engine run (the ``alerts`` report subsection)."""

    fired: int = 0
    by_rule: dict = field(default_factory=dict)

    @classmethod
    def of(cls, engine: AlertEngine) -> "AlertSummary":
        by_rule: dict[str, int] = {}
        for alert in engine.alerts:
            by_rule[alert.rule] = by_rule.get(alert.rule, 0) + 1
        return cls(fired=len(engine.alerts),
                   by_rule={k: by_rule[k] for k in sorted(by_rule)})
