"""Cluster-state probes shared by the scraper and ClusterMonitor.

Exactly one place computes per-node CPU/disk utilization and the paper's
imbalance indices. :class:`repro.metrics.ClusterMonitor` (the historical
figure-facing sampler) and the telemetry scraper both call
:func:`sample_utilization`, so the two mechanisms cannot drift — the
monitor keeps its process-loop driver (figure snapshots depend on its
timeout events) while telemetry reads the same numbers from the kernel's
pop hook without scheduling anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..simcluster import SimCluster


@dataclass
class UtilizationSample:
    """One instant of cluster utilization (the ClusterMonitor quantities)."""

    #: (node_id, cpu utilization 0..1) per DataNode, in cluster order.
    node_cpu: list[tuple[str, float]]
    #: (node_id, active disk ops) per DataNode, in cluster order.
    node_disk_ops: list[tuple[str, float]]
    cluster_cpu: float
    cpu_imbalance: float
    disk_imbalance: float
    scheduled_memory_fraction: float
    used_vcores: float


def sample_utilization(cluster: "SimCluster") -> UtilizationSample:
    """Read the monitor quantities from a cluster, mutating nothing."""
    rm = cluster.rm
    total_cores = sum(n.cpu.cores for n in cluster.datanodes)
    busy = 0.0
    node_cpu: list[tuple[str, float]] = []
    node_disk_ops: list[tuple[str, float]] = []
    for node in cluster.datanodes:
        util = node.cpu.utilization()
        node_cpu.append((node.node_id, util))
        node_disk_ops.append((node.node_id, float(node.disk.active_ops)))
        busy += util * node.cpu.cores

    utils = [u for _, u in node_cpu]
    disks = [d for _, d in node_disk_ops]
    total = rm.total_capability()
    used = rm.total_used()
    return UtilizationSample(
        node_cpu=node_cpu,
        node_disk_ops=node_disk_ops,
        cluster_cpu=busy / total_cores if total_cores else 0.0,
        cpu_imbalance=max(utils) - min(utils) if utils else 0.0,
        disk_imbalance=float(max(disks) - min(disks)) if disks else 0.0,
        scheduled_memory_fraction=(used.memory_mb / total.memory_mb
                                   if total.memory_mb else 0.0),
        used_vcores=float(used.vcores),
    )
