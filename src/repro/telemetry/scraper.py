"""Sim-time scraper: samples the registry into bounded ring buffers.

The obvious implementation — a simulation process that wakes every
``scrape_interval_s`` — would *add events to the kernel queue*, shifting
event ids and breaking the guarantee that enabling telemetry leaves runs
byte-identical. Instead the scraper piggybacks on the kernel's
kernel's pop path: as each event is popped at time ``when``, any
scrape grid points ``anchor + k*interval`` in ``(last, when]`` are sampled
and attributed to their *grid* timestamp. The hook runs before the event's
callbacks, so the registry state it reads is exactly the simulation's
step-function value at every grid point since the previous event — no
event is ever scheduled, so the event sequence (and therefore every
digest and snapshot) is provably identical with telemetry on or off.

The hook itself is the kernel's dedicated ``env.sampler`` slot rather than
the generic ``env.tracers`` list: ``step()`` compares the popped time
against ``env.sample_next`` inline, so between grid points an enabled
scraper costs one float compare per event — no function call at all.

Grid timestamps are computed multiplicatively (``anchor + k * interval``,
never ``+= interval``) so thousand-scrape runs do not accrue float error —
the same lesson the heartbeat wheel learned in PR 7.

Idle gaps are bounded: if the kernel sleeps across more than
``catchup_limit`` grid points, only the most recent ones are sampled and
the rest are counted in :attr:`Scraper.samples_skipped` (the step-function
values in a gap are all equal anyway; only counters pulled mid-gap would
have been interesting, and nothing changes them while no events run).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from .instruments import LabelSet, TelemetryRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..simulation.core import Environment


class RingSeries:
    """One bounded time series: parallel (time, value) rings."""

    __slots__ = ("name", "labels", "times", "values")

    def __init__(self, name: str, labels: LabelSet, maxlen: int) -> None:
        self.name = name
        self.labels = labels
        self.times: deque[float] = deque(maxlen=maxlen)
        self.values: deque[float] = deque(maxlen=maxlen)

    def append(self, t: float, value: float) -> None:
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def window(self, start_s: float) -> list[tuple[float, float]]:
        """Samples with ``t >= start_s`` (oldest first)."""
        return [(t, v) for t, v in zip(self.times, self.values) if t >= start_s]

    def value_at_or_before(self, t: float) -> Optional[float]:
        """Latest sample value with timestamp <= ``t`` (None if none)."""
        result = None
        for ts, v in zip(self.times, self.values):
            if ts > t:
                break
            result = v
        return result

    def to_dict(self, digits: int = 6) -> dict:
        return {"t": [round(t, digits) for t in self.times],
                "v": [round(v, digits) for v in self.values]}


class Scraper:
    """Samples every registry instrument at the scrape grid points."""

    def __init__(self, env: Environment, registry: TelemetryRegistry, *,
                 interval_s: float, retention: int,
                 catchup_limit: int = 8) -> None:
        if interval_s <= 0:
            raise ValueError("scrape interval must be positive")
        if retention < 1:
            raise ValueError("retention must be at least one sample")
        self.env = env
        self.registry = registry
        self.interval_s = float(interval_s)
        self.retention = retention
        self.catchup_limit = max(1, catchup_limit)
        self._anchor = env.now
        self._k = 1  # next grid index: anchor + k * interval
        # Cached next-due timestamp, mirrored into ``env.sample_next`` so
        # the kernel's inline compare needs no arithmetic.
        self._next_t = self._anchor + self.interval_s
        self.scrapes_done = 0
        self.samples_skipped = 0
        self._series: dict[tuple, RingSeries] = {}
        #: Called with the grid timestamp after each scrape (alert engine).
        self.on_scrape: list[Callable[[float], None]] = []
        self._installed = False
        # One stable bound-method object: ``self._on_due`` evaluates to a
        # *fresh* bound method each access, so identity checks against
        # whatever was stored in ``env.sampler`` need this cached one.
        self._hook = self._on_due

    # -- installation -------------------------------------------------------
    def install(self) -> None:
        """Attach the kernel sampler slot. Idempotent."""
        if self._installed:
            return
        if self.env.sampler is not None:
            raise RuntimeError("another sampler is already installed on "
                               "this environment")
        self.env.sampler = self._hook
        self.env.sample_next = self._next_t
        self._installed = True

    def uninstall(self) -> None:
        if self._installed:
            if self.env.sampler is self._hook:
                self.env.sampler = None
                self.env.sample_next = float("inf")
            self._installed = False

    # -- sampling -----------------------------------------------------------
    def _next_due(self) -> float:
        return self._anchor + self._k * self.interval_s

    def _on_due(self, when: float) -> None:
        """Kernel calls this only once ``when`` crosses the next grid point."""
        due = self._next_due()
        emitted = 0
        while due <= when and emitted < self.catchup_limit:
            self.sample(due)
            self._k += 1
            emitted += 1
            due = self._next_due()
        if due <= when:
            # Idle gap longer than the catch-up budget: skip forward so the
            # next samples stay on the grid.
            skipped = int((when - due) // self.interval_s) + 1
            self.samples_skipped += skipped
            self._k += skipped
            due = self._next_due()
        self._next_t = due
        if self._installed:
            self.env.sample_next = due

    def sample(self, t: float) -> None:
        """Read every instrument once, stamping samples with ``t``."""
        series = self._series
        for instrument in self.registry:
            key = (instrument.name, instrument.labels)
            ring = series.get(key)
            if ring is None:
                ring = RingSeries(instrument.name, instrument.labels,
                                  self.retention)
                series[key] = ring
            ring.append(t, instrument.value)
        self.scrapes_done += 1
        for hook in self.on_scrape:
            hook(t)

    def final_scrape(self) -> None:
        """One closing sample at the current sim time (end of run)."""
        now = self.env.now
        for ring in self._series.values():
            if ring.times and ring.times[-1] >= now:
                return
        self.sample(now)

    # -- access -------------------------------------------------------------
    def series(self, name: str, labels: LabelSet | dict[str, str] = ()
               ) -> Optional[RingSeries]:
        if isinstance(labels, dict):
            labels = tuple(sorted(labels.items()))
        return self._series.get((name, labels))

    def all_series(self) -> list[RingSeries]:
        """Every ring, in first-sample (registration) order."""
        return list(self._series.values())

    def retained_samples(self) -> int:
        return sum(len(ring) for ring in self._series.values())

    def ring_bytes_estimate(self) -> int:
        """Rough retention footprint: two floats + deque overhead each."""
        return self.retained_samples() * 2 * 8 + len(self._series) * 256
