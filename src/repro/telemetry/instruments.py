"""Instrument primitives: counters, gauges, bucketed histograms, registry.

The registry follows the zero-overhead-when-disabled discipline of the
PR 3 tracer: nothing here schedules events or touches the kernel, and push
sites in the stack guard on ``env.telemetry is not None``, so a disabled
run pays one attribute read per site. Instruments are deliberately tiny —
plain Python, ``__slots__``, no locks (the simulator is single-threaded) —
because the scraper reads every one of them on each scrape.

Two source styles coexist:

* **push** — code calls :meth:`Counter.inc` / :meth:`Gauge.set` /
  :meth:`Histogram.observe` at the instrumented site;
* **pull** — the instrument wraps a zero-argument callable read at scrape
  time (e.g. ``lambda: env.events_processed``). Pull sources keep hot
  paths untouched: the kernel counts events anyway, telemetry just reads
  the number. Pull counters must be monotonic; the exporter relies on it.

Naming follows OpenMetrics conventions: snake_case, unit as a suffix
(``_seconds``, ``_mb``), no ``_total`` suffix on the *instrument* name —
the exporter appends it to counter samples.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Iterator, Optional, Sequence

#: Label sets are stored as sorted tuples of (key, value) so identity and
#: export order never depend on dict insertion or hash order.
LabelSet = tuple[tuple[str, str], ...]

#: Default histogram buckets (seconds): spans RPC latencies through
#: multi-minute waits. Upper bounds are inclusive, OpenMetrics-style.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)


def make_labels(labels: Optional[dict[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonic count; either pushed via :meth:`inc` or pulled from ``fn``."""

    __slots__ = ("name", "help", "unit", "labels", "_value", "_fn")

    kind = "counter"

    def __init__(self, name: str, help_text: str, unit: str = "",
                 labels: Optional[dict[str, str]] = None,
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.help = help_text
        self.unit = unit
        self.labels = make_labels(labels)
        self._value = 0.0
        self._fn = fn

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Gauge:
    """Point-in-time value; pushed via :meth:`set` or pulled from ``fn``."""

    __slots__ = ("name", "help", "unit", "labels", "_value", "_fn")

    kind = "gauge"

    def __init__(self, name: str, help_text: str, unit: str = "",
                 labels: Optional[dict[str, str]] = None,
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.help = help_text
        self.unit = unit
        self.labels = make_labels(labels)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Histogram:
    """Cumulative-bucket histogram with a deterministic quantile estimate.

    ``bounds`` are inclusive upper edges; an implicit +Inf bucket catches
    the rest. :meth:`quantile` interpolates linearly inside the target
    bucket (exact observed min/max clamp the edges), which bounds its error
    by one bucket width — the differential test against
    :func:`repro.metrics.exact_percentile` pins that bound.
    """

    __slots__ = ("name", "help", "unit", "labels", "bounds", "counts",
                 "sum", "count", "_min", "_max")

    kind = "histogram"

    def __init__(self, name: str, help_text: str, unit: str = "",
                 labels: Optional[dict[str, str]] = None,
                 bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered or any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError(f"histogram bounds must be strictly increasing, got {bounds}")
        self.name = name
        self.help = help_text
        self.unit = unit
        self.labels = make_labels(labels)
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def value(self) -> float:
        """Scrape value of a histogram series: its observation count."""
        return float(self.count)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> list[tuple[float, int]]:
        """OpenMetrics ``_bucket`` rows: (le, cumulative count), +Inf last."""
        rows: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            rows.append((bound, running))
        rows.append((float("inf"), running + self.counts[-1]))
        return rows

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0..100) from the buckets."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            return 0.0
        target = q / 100.0 * self.count
        running = 0
        lower = self._min
        for bound, n in zip(self.bounds, self.counts):
            if n:
                upper = min(bound, self._max)
                if running + n >= target:
                    frac = (target - running) / n
                    return max(lower, min(upper, lower + frac * (upper - lower)))
                running += n
                lower = max(lower, upper)
        return self._max


Instrument = "Counter | Gauge | Histogram"


class TelemetryRegistry:
    """Ordered collection of instruments, keyed by (name, labels).

    Registration order is export/scrape order, so every artifact derived
    from the registry (OpenMetrics text, JSONL, ring buffers, Perfetto
    counter tracks) is deterministic and independent of hash seeds.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelSet],
                                Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}

    def _register(self, instrument: Counter | Gauge | Histogram) -> None:
        key = (instrument.name, instrument.labels)
        if key in self._instruments:
            raise ValueError(f"duplicate instrument {instrument.name} {instrument.labels}")
        seen = self._kinds.get(instrument.name)
        if seen is not None and seen != instrument.kind:
            raise ValueError(f"instrument {instrument.name} registered as both "
                             f"{seen} and {instrument.kind}")
        self._kinds[instrument.name] = instrument.kind
        self._instruments[key] = instrument

    def counter(self, name: str, help_text: str, unit: str = "",
                labels: Optional[dict[str, str]] = None,
                fn: Optional[Callable[[], float]] = None) -> Counter:
        c = Counter(name, help_text, unit, labels, fn)
        self._register(c)
        return c

    def gauge(self, name: str, help_text: str, unit: str = "",
              labels: Optional[dict[str, str]] = None,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        g = Gauge(name, help_text, unit, labels, fn)
        self._register(g)
        return g

    def histogram(self, name: str, help_text: str, unit: str = "",
                  labels: Optional[dict[str, str]] = None,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        h = Histogram(name, help_text, unit, labels, bounds)
        self._register(h)
        return h

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str, labels: Optional[dict[str, str]] = None
            ) -> Optional[Counter | Gauge | Histogram]:
        return self._instruments.get((name, make_labels(labels)))

    def families(self) -> list[tuple[str, list[Counter | Gauge | Histogram]]]:
        """Instruments grouped by metric name, in registration order."""
        grouped: dict[str, list[Counter | Gauge | Histogram]] = {}
        for instrument in self._instruments.values():
            grouped.setdefault(instrument.name, []).append(instrument)
        return list(grouped.items())
