"""Workload profiles: the simulator-facing cost model of an application.

A profile answers, for each task, "how much CPU and how many bytes" — the
simulator turns those into time via the cluster's contended devices. The
constants are calibrated from the *real* functional engine in
:mod:`repro.calibration` (scaled to the paper's 2013-era Java stack).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class WorkloadProfile:
    """Per-application cost constants used by the simulated tasks."""

    name: str
    #: CPU-seconds of map function per MB of split input.
    map_cpu_s_per_mb: float
    #: Fixed CPU-seconds per map task regardless of input size (PI's samples).
    map_cpu_fixed_s: float = 0.0
    #: Map output bytes per input byte *after* the combiner (s^o / s^i).
    map_output_ratio: float = 1.0
    #: Absolute map output MB per task when input-independent (PI emits a
    #: constant few bytes regardless of "input size"). None = use the ratio.
    map_output_fixed_mb: float | None = None
    #: Raw (pre-combiner) map output per input byte. This is what U+ must
    #: hold in RAM to skip the spill; for WordCount it is ~5x the combined
    #: size because every token becomes a (word, 1) pair. None = same as
    #: ``map_output_ratio``.
    map_raw_output_ratio: float | None = None
    #: CPU-seconds of reduce function per MB of shuffled input.
    reduce_cpu_s_per_mb: float = 0.1
    #: Fixed CPU-seconds per reduce task.
    reduce_cpu_fixed_s: float = 0.1
    #: Final output bytes per shuffled byte.
    reduce_output_ratio: float = 1.0
    #: Relative per-task compute skew (+/- fraction). Real inputs are not
    #: uniform — per-split record mixes differ — so map durations spread out;
    #: this is what makes map-phase effects visible past the reduce ramp-up,
    #: exactly as on a real cluster. Deterministic per task (see
    #: :func:`task_skew_factor`), so runs stay reproducible.
    compute_skew: float = 0.15
    #: Probability that a given task *attempt* fails transiently (bad disk
    #: sector, OOM-killed JVM, ...). Deterministic per attempt id, so retries
    #: succeed unless the rate is extreme. 0 = fault-free (default).
    transient_failure_rate: float = 0.0

    def map_cpu_s(self, split_mb: float) -> float:
        return self.map_cpu_fixed_s + split_mb * self.map_cpu_s_per_mb

    def map_output_mb(self, split_mb: float) -> float:
        if self.map_output_fixed_mb is not None:
            return self.map_output_fixed_mb
        return split_mb * self.map_output_ratio

    def map_raw_output_mb(self, split_mb: float) -> float:
        if self.map_output_fixed_mb is not None:
            return self.map_output_fixed_mb
        ratio = (self.map_raw_output_ratio
                 if self.map_raw_output_ratio is not None else self.map_output_ratio)
        return split_mb * ratio

    def reduce_cpu_s(self, shuffle_mb: float) -> float:
        return self.reduce_cpu_fixed_s + shuffle_mb * self.reduce_cpu_s_per_mb

    def reduce_output_mb(self, shuffle_mb: float) -> float:
        return shuffle_mb * self.reduce_output_ratio

    def with_(self, **kwargs) -> "WorkloadProfile":
        return replace(self, **kwargs)


def task_skew_factor(profile: WorkloadProfile, task_key: str) -> float:
    """Deterministic compute multiplier in [1-skew, 1+skew] for one task."""
    if profile.compute_skew <= 0:
        return 1.0
    digest = hashlib.md5(task_key.encode()).digest()
    unit = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF  # [0, 1]
    return 1.0 + profile.compute_skew * (2.0 * unit - 1.0)


def attempt_fails(profile: WorkloadProfile, attempt_key: str) -> bool:
    """Deterministic transient-failure draw for one task attempt."""
    if profile.transient_failure_rate <= 0:
        return False
    digest = hashlib.md5(attempt_key.encode()).digest()
    unit = int.from_bytes(digest[4:8], "big") / 0xFFFFFFFF
    return unit < profile.transient_failure_rate


#: Calibrated default profiles for the paper's three benchmarks.
#: WordCount: CPU-heavy tokenisation; the combiner collapses output sharply.
WORDCOUNT_PROFILE = WorkloadProfile(
    name="wordcount",
    map_cpu_s_per_mb=0.60,
    map_output_ratio=0.30,
    map_raw_output_ratio=1.7,
    reduce_cpu_s_per_mb=0.15,
    reduce_output_ratio=0.35,
    compute_skew=0.35,   # natural-language splits vary a lot per file
)

#: TeraSort: identity map/reduce, I/O bound, output == input.
TERASORT_PROFILE = WorkloadProfile(
    name="terasort",
    map_cpu_s_per_mb=0.06,
    map_output_ratio=1.0,
    reduce_cpu_s_per_mb=0.08,
    reduce_output_ratio=1.0,
    compute_skew=0.10,   # fixed-width rows: near-uniform splits
)


def pi_profile(total_samples: float, num_maps: int,
               cost_per_sample_s: float = 5.0e-8) -> WorkloadProfile:
    """PI estimator: pure compute, trivially small I/O.

    Each map draws ``total_samples / num_maps`` quasi-random points; output
    is a single (inside, outside) pair.
    """
    per_map = total_samples / max(1, num_maps)
    return WorkloadProfile(
        name="pi",
        map_cpu_s_per_mb=0.0,
        map_cpu_fixed_s=per_map * cost_per_sample_s,
        map_output_fixed_mb=0.001,
        reduce_cpu_s_per_mb=0.0,
        reduce_cpu_fixed_s=0.05,
        reduce_output_ratio=1.0,
        compute_skew=0.05,   # identical per-map sample counts
    )
