"""WordCount: the paper's primary benchmark, as a real engine job.

Identical in structure to ``hadoop-mapreduce-examples wordcount``: tokenize
on whitespace, emit (word, 1), combine and reduce by summation.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterator, Sequence

from ..engine import EngineJob, JobOutput, LocalJobRunner, TextInputFormat
from ..engine.types import MapContext, ReduceContext


def wordcount_mapper(_offset: Any, line: str, ctx: MapContext) -> None:
    for word in line.split():
        ctx.emit(word, 1)


def sum_reducer(key: Any, values: Iterator[int], ctx: ReduceContext) -> None:
    ctx.emit(key, sum(values))


def wordcount_job(num_reduces: int = 1, use_combiner: bool = True) -> EngineJob:
    return EngineJob(
        name="wordcount",
        mapper=wordcount_mapper,
        reducer=sum_reducer,
        combiner=sum_reducer if use_combiner else None,
        num_reduces=num_reduces,
    )


def run_wordcount(files: Sequence[tuple[str, str]], parallel_maps: int = 1,
                  num_reduces: int = 1, use_combiner: bool = True,
                  sort_buffer_bytes: int = 4 * 1024 * 1024) -> JobOutput:
    """Count words across ``files`` ((name, content) pairs)."""
    runner = LocalJobRunner(parallel_maps=parallel_maps,
                            sort_buffer_bytes=sort_buffer_bytes)
    splits = TextInputFormat.splits(files)
    return runner.run(wordcount_job(num_reduces, use_combiner), splits)


def reference_wordcount(files: Sequence[tuple[str, str]]) -> dict[str, int]:
    """Independent oracle used by the tests."""
    counts: Counter = Counter()
    for _name, content in files:
        counts.update(content.split())
    return dict(counts)
