"""Word statistics: the wordmean / wordmedian / word-stddev example jobs.

Hadoop's examples package ships three tiny statistics jobs over word
lengths; Hive-style ad-hoc analytics look exactly like this. All three run
as one engine job here (emit per-word-length counts, aggregate centrally)
plus pure-Python oracles for the tests.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Sequence

from ..engine import EngineJob, JobOutput, LocalJobRunner, TextInputFormat
from ..engine.types import MapContext, ReduceContext
from .base import WorkloadProfile

WORDSTATS_PROFILE = WorkloadProfile(
    name="wordstats",
    map_cpu_s_per_mb=0.45,
    map_output_ratio=0.02,
    map_raw_output_ratio=0.4,
    reduce_cpu_s_per_mb=0.05,
    reduce_output_ratio=0.5,
    compute_skew=0.30,
)


def _length_mapper(_offset: Any, line: str, ctx: MapContext) -> None:
    for word in line.split():
        ctx.emit(len(word), 1)


def _sum_reducer(key: int, values: Iterator[int], ctx: ReduceContext) -> None:
    ctx.emit(key, sum(values))


def word_length_histogram(files: Sequence[tuple[str, str]],
                          parallel_maps: int = 1) -> JobOutput:
    """(word length -> count), the shared substrate of all three stats."""
    job = EngineJob("wordstats", _length_mapper, _sum_reducer,
                    combiner=_sum_reducer, num_reduces=1)
    return LocalJobRunner(parallel_maps=parallel_maps).run(
        job, TextInputFormat.splits(files))


def _histogram(output: JobOutput) -> list[tuple[int, int]]:
    return sorted(output.as_dict().items())


def word_mean(output: JobOutput) -> float:
    pairs = _histogram(output)
    total = sum(count for _length, count in pairs)
    if not total:
        raise ValueError("no words")
    return sum(length * count for length, count in pairs) / total


def word_median(output: JobOutput) -> int:
    pairs = _histogram(output)
    total = sum(count for _length, count in pairs)
    if not total:
        raise ValueError("no words")
    midpoint = (total + 1) // 2
    seen = 0
    for length, count in pairs:
        seen += count
        if seen >= midpoint:
            return length
    return pairs[-1][0]  # pragma: no cover - unreachable


def word_stddev(output: JobOutput) -> float:
    pairs = _histogram(output)
    total = sum(count for _length, count in pairs)
    if not total:
        raise ValueError("no words")
    mean = word_mean(output)
    variance = sum(count * (length - mean) ** 2 for length, count in pairs) / total
    return math.sqrt(variance)


def reference_word_lengths(files: Sequence[tuple[str, str]]) -> list[int]:
    lengths: list[int] = []
    for _name, content in files:
        lengths.extend(len(w) for w in content.split())
    return lengths
