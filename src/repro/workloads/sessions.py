"""Sessionization: clickstream analysis with secondary sort.

The canonical Hive-era short job: take (user, timestamp, url) click events,
group per user *in timestamp order* (the engine's grouping-comparator
secondary sort), and cut sessions wherever two consecutive clicks are more
than ``gap_s`` apart. Emits per-user session counts and lengths.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from ..engine import EngineJob, JobOutput, LocalJobRunner, TextInputFormat, stable_hash
from ..engine.types import MapContext, ReduceContext
from .base import WorkloadProfile

#: Simulator-facing profile: light parsing, small intermediate data.
SESSIONS_PROFILE = WorkloadProfile(
    name="sessions",
    map_cpu_s_per_mb=0.30,
    map_output_ratio=0.40,
    map_raw_output_ratio=0.9,
    reduce_cpu_s_per_mb=0.20,
    reduce_output_ratio=0.10,
    compute_skew=0.30,
)


def generate_clicks(num_users: int, clicks_per_user: int, seed: int = 5,
                    num_files: int = 2, gap_mean_s: float = 120.0
                    ) -> list[tuple[str, str]]:
    """Synthetic clickstream files: lines of ``user<TAB>epoch<TAB>url``.

    Inter-click gaps are exponential around ``gap_mean_s`` so realistic
    session boundaries appear; events are shuffled across files like logs
    collected from many frontends.
    """
    rng = np.random.default_rng(seed)
    lines: list[str] = []
    for u in range(num_users):
        t = float(rng.integers(0, 3600))
        for _ in range(clicks_per_user):
            t += float(rng.exponential(gap_mean_s))
            url = f"/page/{rng.integers(0, 50)}"
            lines.append(f"user{u:04d}\t{t:.0f}\t{url}")
    order = rng.permutation(len(lines))
    shuffled = [lines[i] for i in order]
    per_file = -(-len(shuffled) // num_files)
    return [
        (f"clicks-{i:03d}", "\n".join(shuffled[i * per_file:(i + 1) * per_file]))
        for i in range(num_files)
    ]


def _mapper(_offset: Any, line: str, ctx: MapContext) -> None:
    user, _tab, rest = line.partition("\t")
    stamp, _tab2, _url = rest.partition("\t")
    if user and stamp:
        ctx.emit((user, float(stamp)), 1)


def _session_reducer(gap_s: float):
    def reducer(first_key: tuple, pairs: Iterator[tuple], ctx: ReduceContext) -> None:
        user = first_key[0]
        sessions = 0
        last_stamp = None
        for (u, stamp), _one in pairs:
            if last_stamp is None or stamp - last_stamp > gap_s:
                sessions += 1
            last_stamp = stamp
        ctx.emit(user, sessions)

    return reducer


def sessionize(files: Sequence[tuple[str, str]], gap_s: float = 1800.0,
               num_reduces: int = 1, parallel_maps: int = 1) -> JobOutput:
    """Count sessions per user (clicks > ``gap_s`` apart start a new one)."""
    job = EngineJob(
        name="sessions",
        mapper=_mapper,
        reducer=_session_reducer(gap_s),
        num_reduces=num_reduces,
        # Sort by (user, timestamp); group by user; partition by user only,
        # otherwise one user's clicks scatter across reducers.
        sort_key=lambda k: k,
        grouping_key=lambda k: k[0],
        partitioner=lambda k, n: stable_hash(k[0]) % n,
    )
    runner = LocalJobRunner(parallel_maps=parallel_maps)
    return runner.run(job, TextInputFormat.splits(files))


def reference_sessionize(files: Sequence[tuple[str, str]],
                         gap_s: float = 1800.0) -> dict[str, int]:
    """Oracle using plain Python sorting."""
    events: dict[str, list[float]] = {}
    for _name, content in files:
        for line in content.split("\n"):
            if not line:
                continue
            user, _t, rest = line.partition("\t")
            stamp = float(rest.split("\t")[0])
            events.setdefault(user, []).append(stamp)
    out: dict[str, int] = {}
    for user, stamps in events.items():
        stamps.sort()
        sessions = 0
        last = None
        for stamp in stamps:
            if last is None or stamp - last > gap_s:
                sessions += 1
            last = stamp
        out[user] = sessions
    return out
