"""Grep: the Hadoop-examples regex scan, as a real engine job.

Hadoop's grep actually runs *two* chained MapReduce jobs: a search job that
counts regex matches, and a tiny sort job that orders matches by frequency
descending. Both are implemented here over real text; the one-line
:func:`run_grep` wraps the chain. Grep is the archetypal ad-hoc short job —
heavy input scan, near-zero intermediate data — so it stresses exactly the
start-up overheads MRapid removes.
"""

from __future__ import annotations

import re
from typing import Any, Iterator, Sequence

from ..engine import EngineJob, JobOutput, LocalJobRunner, PairInputFormat, TextInputFormat
from ..engine.types import MapContext, ReduceContext
from .base import WorkloadProfile

#: Scan-heavy, tiny output: the simulator-facing cost profile.
GREP_PROFILE = WorkloadProfile(
    name="grep",
    map_cpu_s_per_mb=0.40,
    map_output_ratio=0.02,
    map_raw_output_ratio=0.05,
    reduce_cpu_s_per_mb=0.05,
    reduce_output_ratio=1.0,
    compute_skew=0.30,
)


def _search_job(pattern: str) -> EngineJob:
    compiled = re.compile(pattern)

    def mapper(_offset: Any, line: str, ctx: MapContext) -> None:
        for match in compiled.findall(line):
            text = match if isinstance(match, str) else match[0]
            ctx.emit(text, 1)

    def reducer(key: Any, values: Iterator[int], ctx: ReduceContext) -> None:
        ctx.emit(key, sum(values))

    return EngineJob("grep-search", mapper, reducer, combiner=reducer,
                     num_reduces=1)


def _sort_job() -> EngineJob:
    """Order (match, count) pairs by descending count (Hadoop's grep-sort)."""

    def mapper(key: Any, value: int, ctx: MapContext) -> None:
        ctx.emit(-value, key)  # negate so ascending sort gives descending count

    def reducer(neg_count: int, values: Iterator[str], ctx: ReduceContext) -> None:
        for match in sorted(values):
            ctx.emit(match, -neg_count)

    return EngineJob("grep-sort", mapper, reducer, num_reduces=1)


def run_grep(files: Sequence[tuple[str, str]], pattern: str,
             parallel_maps: int = 1) -> JobOutput:
    """Search ``pattern`` across ``files``; output sorted by frequency desc."""
    runner = LocalJobRunner(parallel_maps=parallel_maps)
    search = runner.run(_search_job(pattern), TextInputFormat.splits(files))

    pairs = search.results()
    size = sum(len(str(k)) + 8 for k, _v in pairs)
    sort_input = PairInputFormat.splits([("grep-intermediate", pairs, size)])
    return runner.run(_sort_job(), sort_input)


def reference_grep(files: Sequence[tuple[str, str]], pattern: str) -> list[tuple[str, int]]:
    """Oracle: (match, count) sorted by count desc, then match asc."""
    compiled = re.compile(pattern)
    counts: dict[str, int] = {}
    for _name, content in files:
        for line in content.split("\n"):
            for match in compiled.findall(line):
                text = match if isinstance(match, str) else match[0]
                counts[text] = counts.get(text, 0) + 1
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
