"""Joins: repartition (reduce-side) and broadcast (map-side).

The bread-and-butter of Hive query plans. The reduce-side join uses the
engine's secondary sort so each user's dimension record arrives *before*
their fact records — the textbook tagged-union repartition join. The
broadcast join ships the small table to every mapper instead (no shuffle),
the right choice when one side fits in memory.

Input lines are tagged at generation time, as an upstream ETL stage would:
``U<TAB>user<TAB>name`` and ``O<TAB>user<TAB>order_id<TAB>amount``.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from ..engine import EngineJob, JobOutput, LocalJobRunner, TextInputFormat, stable_hash
from ..engine.types import MapContext, ReduceContext
from .base import WorkloadProfile

JOIN_PROFILE = WorkloadProfile(
    name="join",
    map_cpu_s_per_mb=0.25,
    map_output_ratio=1.1,
    map_raw_output_ratio=1.1,
    reduce_cpu_s_per_mb=0.25,
    reduce_output_ratio=1.3,
    compute_skew=0.25,
)

USER_TAG = "U"
ORDER_TAG = "O"


def generate_tables(num_users: int, orders_per_user: float, seed: int = 9,
                    num_files: int = 2) -> tuple[list[tuple[str, str]],
                                                 list[tuple[str, str]]]:
    """(user_files, order_files) with tagged TSV lines.

    Some orders reference unknown users (dangling foreign keys) so the join
    semantics are actually exercised.
    """
    rng = np.random.default_rng(seed)
    users = [f"u{i:05d}" for i in range(num_users)]
    user_lines = [f"{USER_TAG}\t{u}\tname-{u}" for u in users]

    n_orders = int(num_users * orders_per_user)
    order_lines = []
    for i in range(n_orders):
        if num_users and rng.random() > 0.05:
            user = users[int(rng.integers(0, num_users))]
        else:
            user = f"ghost{int(rng.integers(0, 100)):03d}"  # dangling FK
        amount = round(float(rng.uniform(1, 500)), 2)
        order_lines.append(f"{ORDER_TAG}\t{user}\to{i:06d}\t{amount}")

    def split(lines: list[str]) -> list[tuple[str, str]]:
        per = -(-len(lines) // num_files) if lines else 1
        return [(f"part-{i}", "\n".join(lines[i * per:(i + 1) * per]))
                for i in range(num_files)]

    return split(user_lines), split(order_lines)


def _join_mapper(_offset: Any, line: str, ctx: MapContext) -> None:
    fields = line.split("\t")
    if not fields or not fields[0]:
        return
    tag, user = fields[0], fields[1]
    # Key: (user, tag). "O" < "U" lexically, so sort DESC on tag by negating:
    # use (user, 0 for U, 1 for O) so the dimension record leads its group.
    order_rank = 0 if tag == USER_TAG else 1
    ctx.emit((user, order_rank), tuple(fields[2:]))


def _join_reducer(first_key: tuple, pairs: Iterator[tuple],
                  ctx: ReduceContext) -> None:
    user = first_key[0]
    name = None
    for (u, rank), payload in pairs:
        if rank == 0:
            name = payload[0]
        else:
            order_id, amount = payload
            if name is not None:  # inner join: drop dangling orders
                ctx.emit(user, (order_id, float(amount), name))


def repartition_join(user_files: Sequence[tuple[str, str]],
                     order_files: Sequence[tuple[str, str]],
                     num_reduces: int = 2, parallel_maps: int = 1) -> JobOutput:
    """Reduce-side inner join: (user, (order_id, amount, name)) records."""
    job = EngineJob(
        name="repartition-join",
        mapper=_join_mapper,
        reducer=_join_reducer,
        num_reduces=num_reduces,
        grouping_key=lambda k: k[0],
        partitioner=lambda k, n: stable_hash(k[0]) % n,
    )
    splits = TextInputFormat.splits(list(user_files) + list(order_files))
    return LocalJobRunner(parallel_maps=parallel_maps).run(job, splits)


def broadcast_join(user_files: Sequence[tuple[str, str]],
                   order_files: Sequence[tuple[str, str]],
                   parallel_maps: int = 1) -> JobOutput:
    """Map-side join: the user table is broadcast into every mapper."""
    lookup: dict[str, str] = {}
    for _name, content in user_files:
        for line in content.split("\n"):
            fields = line.split("\t")
            if len(fields) >= 3 and fields[0] == USER_TAG:
                lookup[fields[1]] = fields[2]

    def mapper(_offset: Any, line: str, ctx: MapContext) -> None:
        fields = line.split("\t")
        if len(fields) >= 4 and fields[0] == ORDER_TAG:
            name = lookup.get(fields[1])
            if name is not None:
                ctx.emit(fields[1], (fields[2], float(fields[3]), name))

    def identity_reducer(key: Any, values: Iterator, ctx: ReduceContext) -> None:
        for value in values:
            ctx.emit(key, value)

    job = EngineJob("broadcast-join", mapper, identity_reducer, num_reduces=1)
    splits = TextInputFormat.splits(list(order_files))
    return LocalJobRunner(parallel_maps=parallel_maps).run(job, splits)


def reference_join(user_files: Sequence[tuple[str, str]],
                   order_files: Sequence[tuple[str, str]]
                   ) -> set[tuple[str, str, float, str]]:
    """Oracle inner join as flat (user, order_id, amount, name) tuples."""
    names: dict[str, str] = {}
    for _n, content in user_files:
        for line in content.split("\n"):
            fields = line.split("\t")
            if len(fields) >= 3:
                names[fields[1]] = fields[2]
    out = set()
    for _n, content in order_files:
        for line in content.split("\n"):
            fields = line.split("\t")
            if len(fields) >= 4 and fields[1] in names:
                out.add((fields[1], fields[2], float(fields[3]),
                         names[fields[1]]))
    return out


def flatten(output: JobOutput) -> set[tuple[str, str, float, str]]:
    return {(user, oid, amount, name)
            for user, (oid, amount, name) in output.results()}
