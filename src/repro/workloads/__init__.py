"""The paper's benchmark applications, runnable for real + their profiles."""

from .base import (
    TERASORT_PROFILE,
    WORDCOUNT_PROFILE,
    WorkloadProfile,
    pi_profile,
)
from .grep import GREP_PROFILE, reference_grep, run_grep
from .join import (
    JOIN_PROFILE,
    broadcast_join,
    flatten,
    generate_tables,
    reference_join,
    repartition_join,
)
from .pi import count_inside, estimate_pi, halton, halton_points, run_pi
from .sessions import (
    SESSIONS_PROFILE,
    generate_clicks,
    reference_sessionize,
    sessionize,
)
from .terasort import (
    ROW_BYTES,
    rows_to_mb,
    run_terasort,
    sample_keys,
    teragen,
    teravalidate,
)
from .textgen import generate_files, generate_text, make_vocabulary, zipf_weights
from .wordcount import reference_wordcount, run_wordcount, wordcount_job
from .wordstats import (
    WORDSTATS_PROFILE,
    reference_word_lengths,
    word_length_histogram,
    word_mean,
    word_median,
    word_stddev,
)

__all__ = [
    "GREP_PROFILE",
    "JOIN_PROFILE",
    "broadcast_join",
    "flatten",
    "generate_tables",
    "reference_join",
    "repartition_join",
    "ROW_BYTES",
    "SESSIONS_PROFILE",
    "TERASORT_PROFILE",
    "WORDSTATS_PROFILE",
    "generate_clicks",
    "reference_grep",
    "reference_sessionize",
    "reference_word_lengths",
    "run_grep",
    "sessionize",
    "word_length_histogram",
    "word_mean",
    "word_median",
    "word_stddev",
    "WORDCOUNT_PROFILE",
    "WorkloadProfile",
    "count_inside",
    "estimate_pi",
    "generate_files",
    "generate_text",
    "halton",
    "halton_points",
    "make_vocabulary",
    "pi_profile",
    "reference_wordcount",
    "rows_to_mb",
    "run_pi",
    "run_terasort",
    "run_wordcount",
    "sample_keys",
    "teragen",
    "teravalidate",
    "wordcount_job",
    "zipf_weights",
]
