"""TeraGen / TeraSort / TeraValidate over real 100-byte rows.

Row format follows GraySort/Hadoop TeraGen: a 10-byte random key, a 10-byte
row id, and 78 bytes of filler (we keep them as Python ``bytes``). TeraSort
samples the input to build a total-order partitioner, sorts within each
reduce partition, and partition order gives the global order.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..engine import (
    EngineJob,
    JobOutput,
    LocalJobRunner,
    PairInputFormat,
    TotalOrderPartitioner,
)
from ..engine.io import RecordSplit
from ..engine.types import MapContext, ReduceContext

ROW_BYTES = 100
KEY_BYTES = 10


def teragen(num_rows: int, seed: int = 0, num_files: int = 1
            ) -> list[list[tuple[bytes, bytes]]]:
    """Generate ``num_rows`` rows spread over ``num_files`` inputs.

    Returns per-file lists of (key, value) pairs; key is 10 random bytes
    (printable range, like TeraGen's ASCII keys), value is the remaining 90.
    """
    if num_rows < 0:
        raise ValueError("num_rows cannot be negative")
    if num_files < 1:
        raise ValueError("num_files must be >= 1")
    rng = np.random.default_rng(seed)
    keys = rng.integers(32, 127, size=(num_rows, KEY_BYTES), dtype=np.uint8)
    files: list[list[tuple[bytes, bytes]]] = [[] for _ in range(num_files)]
    per_file = -(-num_rows // num_files) if num_rows else 0
    for row in range(num_rows):
        key = keys[row].tobytes()
        value = b"%010d" % row + b"X" * (ROW_BYTES - KEY_BYTES - 10)
        files[min(row // per_file, num_files - 1)].append((key, value))
    return files


def terasort_splits(files: Sequence[Sequence[tuple[bytes, bytes]]]) -> list[RecordSplit]:
    return PairInputFormat.splits([
        (f"teragen-{i:05d}", rows, len(rows) * ROW_BYTES)
        for i, rows in enumerate(files)
    ])


def _identity_mapper(key: bytes, value: bytes, ctx: MapContext) -> None:
    ctx.emit(key, value)


def _first_value_reducer(key: bytes, values: Iterator[bytes], ctx: ReduceContext) -> None:
    for value in values:  # duplicate keys are kept (stable total sort)
        ctx.emit(key, value)


def sample_keys(files: Sequence[Sequence[tuple[bytes, bytes]]],
                sample_size: int = 1000, seed: int = 1) -> list[bytes]:
    """TeraSort's input sampler: uniform row sample across all inputs."""
    all_rows = sum(len(f) for f in files)
    if all_rows == 0:
        return []
    rng = np.random.default_rng(seed)
    picks = sorted(rng.integers(0, all_rows, size=min(sample_size, all_rows)).tolist())
    keys: list[bytes] = []
    base = 0
    it = iter(picks)
    want = next(it, None)
    for rows in files:
        while want is not None and base <= want < base + len(rows):
            keys.append(rows[want - base][0])
            want = next(it, None)
        base += len(rows)
    return keys


def run_terasort(files: Sequence[Sequence[tuple[bytes, bytes]]],
                 num_reduces: int = 4, parallel_maps: int = 1,
                 sample_size: int = 1000) -> JobOutput:
    """Totally order the generated rows."""
    partitioner = TotalOrderPartitioner.from_sample(
        sample_keys(files, sample_size), num_reduces)
    job = EngineJob(
        name="terasort",
        mapper=_identity_mapper,
        reducer=_first_value_reducer,
        combiner=None,
        num_reduces=partitioner.num_partitions,
        partitioner=partitioner,
    )
    runner = LocalJobRunner(parallel_maps=parallel_maps)
    return runner.run(job, terasort_splits(files))


def teravalidate(output: JobOutput) -> tuple[bool, int]:
    """(globally sorted?, total rows) — the TeraValidate check."""
    total = 0
    previous: bytes | None = None
    for partition in output.partitions:
        for key, _value in partition:
            if previous is not None and key < previous:
                return False, total
            previous = key
            total += 1
    return True, total


def rows_to_mb(num_rows: int) -> float:
    """Simulator-facing size of a TeraGen dataset."""
    return num_rows * ROW_BYTES / (1024.0 * 1024.0)
