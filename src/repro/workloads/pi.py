"""PI: quasi-Monte Carlo estimation with a 2-D Halton sequence.

Faithful to Hadoop's PiEstimator: each map draws points from the
low-discrepancy Halton sequence (bases 2 and 3), counts how many land
inside the circle of radius 1/2 centred at (1/2, 1/2), and the single
reducer combines the counts into 4 * inside / total.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..engine import EngineJob, JobOutput, LocalJobRunner, PairInputFormat
from ..engine.types import MapContext, ReduceContext


def halton(index: int, base: int) -> float:
    """The ``index``-th element (1-based) of the van der Corput sequence."""
    if index < 1:
        raise ValueError("Halton index is 1-based")
    result = 0.0
    f = 1.0 / base
    i = index
    while i > 0:
        result += f * (i % base)
        i //= base
        f /= base
    return result


def halton_points(offset: int, count: int) -> np.ndarray:
    """``count`` 2-D Halton points starting at sequence position ``offset``.

    Vectorized digit expansion: the sequence is deterministic, so maps with
    disjoint (offset, count) ranges partition the sample space exactly like
    Hadoop's per-map offsets.
    """
    indices = np.arange(offset + 1, offset + count + 1, dtype=np.int64)
    points = np.empty((count, 2))
    for dim, base in enumerate((2, 3)):
        result = np.zeros(count)
        f = 1.0 / base
        i = indices.copy()
        while i.max() > 0:
            result += f * (i % base)
            i //= base
            f /= base
        points[:, dim] = result
    return points


def count_inside(offset: int, samples: int) -> tuple[int, int]:
    """(inside, outside) for ``samples`` Halton points from ``offset``."""
    if samples == 0:
        return 0, 0
    pts = halton_points(offset, samples)
    d2 = (pts[:, 0] - 0.5) ** 2 + (pts[:, 1] - 0.5) ** 2
    inside = int((d2 <= 0.25).sum())
    return inside, samples - inside


def _pi_mapper(_task_id: int, assignment: tuple[int, int], ctx: MapContext) -> None:
    offset, samples = assignment
    inside, outside = count_inside(offset, samples)
    ctx.emit("inside", inside)
    ctx.emit("outside", outside)


def _pi_reducer(key: str, values: Iterator[int], ctx: ReduceContext) -> None:
    ctx.emit(key, sum(values))


def run_pi(num_maps: int, samples_per_map: int, parallel_maps: int = 1) -> JobOutput:
    """Run the PI job; see :func:`estimate_from_output` for the estimate."""
    if num_maps < 1 or samples_per_map < 0:
        raise ValueError("need >= 1 map and non-negative samples")
    datasets = []
    for m in range(num_maps):
        records: Sequence = [(m, (m * samples_per_map, samples_per_map))]
        datasets.append((f"pi-part-{m:05d}", records, 24))
    job = EngineJob(name="pi", mapper=_pi_mapper, reducer=_pi_reducer,
                    combiner=None, num_reduces=1)
    runner = LocalJobRunner(parallel_maps=parallel_maps)
    return runner.run(job, PairInputFormat.splits(datasets))


def estimate_from_output(output: JobOutput) -> float:
    counts = output.as_dict()
    inside = counts.get("inside", 0)
    outside = counts.get("outside", 0)
    total = inside + outside
    if total == 0:
        raise ValueError("no samples drawn")
    return 4.0 * inside / total


def estimate_pi(num_maps: int, samples_per_map: int, parallel_maps: int = 1) -> float:
    return estimate_from_output(run_pi(num_maps, samples_per_map, parallel_maps))
