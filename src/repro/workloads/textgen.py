"""Deterministic synthetic text corpus (Zipf-distributed words).

Stands in for the text inputs of the paper's WordCount runs: real bytes the
functional engine tokenizes, with a realistic heavy-tailed word frequency so
the combiner's compression ratio is meaningful.
"""

from __future__ import annotations

import numpy as np

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


def make_vocabulary(size: int, seed: int = 13) -> list[str]:
    """``size`` pronounceable pseudo-words, deterministic in ``seed``."""
    if size < 1:
        raise ValueError("vocabulary size must be >= 1")
    rng = np.random.default_rng(seed)
    vocab: list[str] = []
    seen = set()
    while len(vocab) < size:
        syllables = rng.integers(1, 4)
        word = "".join(
            _CONSONANTS[rng.integers(len(_CONSONANTS))] + _VOWELS[rng.integers(len(_VOWELS))]
            for _ in range(syllables)
        )
        if word not in seen:
            seen.add(word)
            vocab.append(word)
    return vocab


def zipf_weights(n: int, exponent: float = 1.1) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def generate_text(size_mb: float, seed: int = 42, vocabulary_size: int = 5000,
                  words_per_line: int = 12, zipf_exponent: float = 1.1) -> str:
    """~``size_mb`` MB of Zipf text, deterministic in ``seed``."""
    if size_mb <= 0:
        raise ValueError("size_mb must be positive")
    vocab = make_vocabulary(vocabulary_size, seed=13)
    weights = zipf_weights(vocabulary_size, zipf_exponent)
    rng = np.random.default_rng(seed)
    target_bytes = int(size_mb * 1024 * 1024)

    # Average word length ~6 chars + separator: draw in bulk for speed.
    approx_words = max(words_per_line, int(target_bytes / 7))
    indices = rng.choice(vocabulary_size, size=approx_words, p=weights)
    words = [vocab[i] for i in indices]

    lines: list[str] = []
    total = 0
    for start in range(0, len(words), words_per_line):
        line = " ".join(words[start:start + words_per_line])
        lines.append(line)
        total += len(line) + 1
        if total >= target_bytes:
            break
    while total < target_bytes:  # top up if the bulk draw fell short
        extra = rng.choice(vocabulary_size, size=words_per_line, p=weights)
        line = " ".join(vocab[i] for i in extra)
        lines.append(line)
        total += len(line) + 1
    return "\n".join(lines)


def generate_files(num_files: int, size_mb: float, seed: int = 42,
                   **kwargs) -> list[tuple[str, str]]:
    """(name, content) pairs, each file independently seeded."""
    return [
        (f"part-{i:05d}", generate_text(size_mb, seed=seed + i, **kwargs))
        for i in range(num_files)
    ]
