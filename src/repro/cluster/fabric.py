"""Max-min fair sharing of capacity among concurrent flows.

This is the performance heart of the simulator. A :class:`SharedFabric`
holds *links* (anything with a capacity in units/second: a disk at 100 MB/s,
a NIC at 120 MB/s, a CPU at 4 cores) and *flows* (a fixed amount of work that
traverses one or more links, optionally rate-capped — e.g. a map task can use
at most 1 core no matter how idle the node is).

Whenever the flow set changes the fabric recomputes a max-min fair
allocation by progressive filling and reschedules the next completion.
Completions use versioned timers so stale wake-ups are ignored; the whole
fabric is O(flows x links) per change, which is tiny at short-job scale.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Optional

from ..simulation.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..simulation.core import Environment

_EPS = 1e-9


class Flow:
    """A fixed quantity of work being served by the fabric.

    ``done`` is an event that fires when the work completes; its value is the
    completion time. Killed flows fail their event (pre-defused so callers
    that already finished waiting are unaffected).
    """

    __slots__ = ("fabric", "path", "size", "cap", "remaining", "rate", "last_update", "done", "label")

    def __init__(self, fabric: "SharedFabric", path: tuple[str, ...], size: float,
                 cap: Optional[float], label: str) -> None:
        self.fabric = fabric
        self.path = path
        self.size = float(size)
        self.cap = cap
        self.remaining = float(size)
        self.rate = 0.0
        self.last_update = fabric.env.now
        self.done: Event = fabric.env.event()
        self.label = label

    @property
    def active(self) -> bool:
        return not self.done.triggered

    def eta(self) -> float:
        """Projected completion time under the current allocation."""
        if self.done.triggered:
            return self.fabric.env.now
        if self.rate <= 0:
            return math.inf
        return self.last_update + self.remaining / self.rate

    def __repr__(self) -> str:
        return f"<Flow {self.label} remaining={self.remaining:.3f} rate={self.rate:.3f}>"


class FlowKilled(Exception):
    """Failure value delivered to a killed flow's ``done`` event."""


class SharedFabric:
    """A set of capacity links shared max-min fairly by flows."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._capacity: dict[str, float] = {}
        self._flows: set[Flow] = set()
        self._version = 0

    # -- topology -----------------------------------------------------------
    def add_link(self, link_id: str, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"link {link_id!r} capacity must be positive, got {capacity}")
        if link_id in self._capacity:
            raise ValueError(f"duplicate link {link_id!r}")
        self._capacity[link_id] = float(capacity)

    def set_capacity(self, link_id: str, capacity: float) -> None:
        """Change a link's capacity (e.g. hot-adding cores); reallocates."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if link_id not in self._capacity:
            raise KeyError(link_id)
        self._advance()
        self._capacity[link_id] = float(capacity)
        self._reallocate()

    def capacity(self, link_id: str) -> float:
        return self._capacity[link_id]

    @property
    def links(self) -> Iterable[str]:
        return self._capacity.keys()

    # -- flows ----------------------------------------------------------------
    def submit(self, path: Iterable[str], size: float, cap: Optional[float] = None,
               label: str = "flow") -> Flow:
        """Start serving ``size`` units of work across ``path``.

        Returns the :class:`Flow`; yield ``flow.done`` to wait. Zero-size
        work completes immediately (the event still goes through the queue so
        ordering stays deterministic).
        """
        path = tuple(path)
        for link in path:
            if link not in self._capacity:
                raise KeyError(f"unknown link {link!r}")
        if size < 0:
            raise ValueError("size must be non-negative")
        if cap is not None and cap <= 0:
            raise ValueError("cap must be positive when given")
        flow = Flow(self, path, size, cap, label)
        if size <= _EPS:
            flow.remaining = 0.0
            flow.done.succeed(self.env.now)
            return flow
        self._advance()
        self._flows.add(flow)
        self._reallocate()
        return flow

    def kill(self, flow: Flow) -> None:
        """Abort a flow; its ``done`` event fails with :class:`FlowKilled`."""
        if flow.done.triggered:
            return
        self._advance()
        self._flows.discard(flow)
        flow.done.fail(FlowKilled(flow.label))
        flow.done.defuse()
        self._reallocate()

    @property
    def active_flows(self) -> frozenset[Flow]:
        return frozenset(self._flows)

    def flows_on(self, link_id: str) -> list[Flow]:
        return [f for f in self._flows if link_id in f.path]

    def utilization(self, link_id: str) -> float:
        """Fraction of a link's capacity currently allocated."""
        used = sum(f.rate for f in self._flows if link_id in f.path)
        return used / self._capacity[link_id]

    # -- engine ---------------------------------------------------------------
    def _advance(self) -> None:
        """Charge elapsed work to every flow at its current rate."""
        now = self.env.now
        for flow in self._flows:
            if flow.rate > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate * (now - flow.last_update))
            flow.last_update = now

    def _reallocate(self) -> None:
        """Progressive-filling max-min fair allocation, then retiming."""
        self._version += 1
        flows = list(self._flows)
        if not flows:
            return

        # Per-flow caps are modeled as private links.
        cap_left = dict(self._capacity)
        link_members: dict[str, set[Flow]] = {}
        for flow in flows:
            members = list(flow.path)
            if flow.cap is not None:
                private = f"__cap__{id(flow)}"
                cap_left[private] = flow.cap
                members.append(private)
            for link in members:
                link_members.setdefault(link, set()).add(flow)
        flow_links: dict[Flow, list[str]] = {
            f: [l for l, m in link_members.items() if f in m] for f in flows
        }

        unfrozen = set(flows)
        rates: dict[Flow, float] = {}
        while unfrozen:
            # Fair headroom per still-active link.
            bottleneck = None
            bottleneck_share = math.inf
            for link, members in link_members.items():
                active = members & unfrozen
                if not active:
                    continue
                share = cap_left[link] / len(active)
                if share < bottleneck_share - _EPS:
                    bottleneck_share = share
                    bottleneck = link
            if bottleneck is None:  # pragma: no cover - defensive
                break
            for flow in list(link_members[bottleneck] & unfrozen):
                rates[flow] = bottleneck_share
                unfrozen.discard(flow)
                for link in flow_links[flow]:
                    cap_left[link] = max(0.0, cap_left[link] - bottleneck_share)

        earliest: Optional[Flow] = None
        earliest_t = math.inf
        now = self.env.now
        for flow in flows:
            flow.rate = rates.get(flow, 0.0)
            if flow.rate > _EPS:
                t = now + flow.remaining / flow.rate
                if t < earliest_t:
                    earliest_t = t
                    earliest = flow
        if earliest is not None:
            self._schedule_wakeup(earliest_t)

    def _schedule_wakeup(self, at: float) -> None:
        version = self._version
        delay = max(0.0, at - self.env.now)
        timer = self.env.timeout(delay)
        timer.callbacks.append(lambda ev: self._on_wakeup(version))

    def _on_wakeup(self, version: int) -> None:
        if version != self._version:
            return  # stale timer; allocation changed since it was set
        self._advance()
        finished = [f for f in self._flows if f.remaining <= _EPS]
        for flow in finished:
            self._flows.discard(flow)
            flow.remaining = 0.0
            flow.done.succeed(self.env.now)
        self._reallocate()
        if not finished and self._flows:
            # Numerical drift: nothing finished exactly; re-arm on new ETAs.
            etas = [f.eta() for f in self._flows if f.rate > _EPS]
            if etas:
                self._schedule_wakeup(min(etas))


class FairShareDevice:
    """A single-link fabric: a disk, a NIC, or a CPU pool.

    ``capacity`` is in work-units/second. ``execute(size, cap=...)`` submits
    work and returns the flow. A CPU pool models a node's cores: capacity =
    number of cores, each task capped at 1.0 (a thread cannot use more than
    one core), so n tasks on c cores each progress at min(1, c/n) — exactly
    the contention the paper's U+ mode banks on.
    """

    LINK = "device"

    def __init__(self, env: "Environment", capacity: float, name: str = "device") -> None:
        self.env = env
        self.name = name
        self.fabric = SharedFabric(env)
        self.fabric.add_link(self.LINK, capacity)

    @property
    def capacity(self) -> float:
        return self.fabric.capacity(self.LINK)

    def execute(self, size: float, cap: Optional[float] = None, label: str = "work") -> Flow:
        return self.fabric.submit((self.LINK,), size, cap=cap, label=f"{self.name}:{label}")

    def kill(self, flow: Flow) -> None:
        self.fabric.kill(flow)

    @property
    def active_count(self) -> int:
        return len(self.fabric.active_flows)

    def utilization(self) -> float:
        return self.fabric.utilization(self.LINK)
