"""Max-min fair sharing of capacity among concurrent flows.

This is the performance heart of the simulator. A :class:`SharedFabric`
holds *links* (anything with a capacity in units/second: a disk at 100 MB/s,
a NIC at 120 MB/s, a CPU at 4 cores) and *flows* (a fixed amount of work that
traverses one or more links, optionally rate-capped — e.g. a map task can use
at most 1 core no matter how idle the node is).

Whenever the flow set changes the fabric recomputes a max-min fair
allocation by progressive filling and reschedules the next completion.

Two properties keep the hot path cheap and deterministic:

* **Incremental state.** Link membership (which flows touch which links,
  including the private per-flow cap links) is maintained across
  ``submit``/``kill``/completion instead of being rebuilt inside every
  reallocation, so a flow change costs O(active flows × links) for the
  progressive filling itself and nothing for bookkeeping. ``flows_on`` and
  ``utilization`` read the maintained index directly. All flow iteration is
  in submission (sequence-number) order — never ``id()``-hash order — so an
  allocation is bit-for-bit reproducible across processes.

* **One live timer.** Completions use a generation-tagged wake-up timer and
  at most one is live per fabric: if the wanted wake-up moves *later* the
  existing timer is kept and simply re-armed when it fires early; only a
  wake-up moving *earlier* arms a new timer (superseding the old one by
  generation). The event heap therefore never accumulates per-change stale
  timers, and a wake-up can never run the allocator twice.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Optional

from ..simulation.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..simulation.core import Environment

_EPS = 1e-9


class Flow:
    """A fixed quantity of work being served by the fabric.

    ``done`` is an event that fires when the work completes; its value is the
    completion time. Killed flows fail their event (pre-defused so callers
    that already finished waiting are unaffected).
    """

    __slots__ = ("fabric", "path", "size", "cap", "remaining", "rate", "last_update",
                 "done", "label", "seq", "links", "submitted_at")

    def __init__(self, fabric: "SharedFabric", path: tuple[str, ...], size: float,
                 cap: Optional[float], label: str) -> None:
        self.fabric = fabric
        self.path = path
        self.size = float(size)
        self.cap = cap
        self.remaining = float(size)
        self.rate = 0.0
        self.last_update = fabric.env.now
        self.submitted_at = fabric.env.now
        self.done: Event = fabric.env.event()
        self.label = label
        #: Monotonic submission number; all fabric iteration orders key on it.
        self.seq = 0
        #: ``path`` plus the private cap link, if any (set on registration).
        self.links: tuple[str, ...] = path

    @property
    def active(self) -> bool:
        return not self.done.triggered

    def eta(self) -> float:
        """Projected completion time under the current allocation."""
        if self.done.triggered:
            return self.fabric.env.now
        if self.rate <= 0:
            return math.inf
        return self.last_update + self.remaining / self.rate

    def __repr__(self) -> str:
        return f"<Flow {self.label} remaining={self.remaining:.3f} rate={self.rate:.3f}>"


class FlowKilled(Exception):
    """Failure value delivered to a killed flow's ``done`` event."""


class SharedFabric:
    """A set of capacity links shared max-min fairly by flows."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._capacity: dict[str, float] = {}
        #: Active flows in submission order (dict used as an ordered set).
        self._flows: dict[Flow, None] = {}
        self._flow_seq = 0
        #: link id -> member flows in submission order (ordered set); covers
        #: both real links and the private per-flow cap links.
        self._link_members: dict[str, dict[Flow, None]] = {}
        #: Private cap-link id -> cap, for flows currently registered.
        self._private_caps: dict[str, float] = {}
        # Wake-up management: at most one *live* timer per fabric.
        self._wakeup_at = math.inf   # when the allocator wants to run next
        self._timer_at = math.inf    # deadline of the live timer (inf = none)
        self._timer_gen = 0          # identity of the live timer
        #: Total timers ever armed (observability / benchmarks).
        self.timers_armed = 0

    # -- topology -----------------------------------------------------------
    def add_link(self, link_id: str, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"link {link_id!r} capacity must be positive, got {capacity}")
        if link_id in self._capacity:
            raise ValueError(f"duplicate link {link_id!r}")
        self._capacity[link_id] = float(capacity)
        self._link_members[link_id] = {}

    def set_capacity(self, link_id: str, capacity: float) -> None:
        """Change a link's capacity (e.g. hot-adding cores); reallocates."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if link_id not in self._capacity:
            raise KeyError(link_id)
        self._advance()
        self._capacity[link_id] = float(capacity)
        self._reallocate()

    def capacity(self, link_id: str) -> float:
        return self._capacity[link_id]

    @property
    def links(self) -> Iterable[str]:
        return self._capacity.keys()

    # -- flows ----------------------------------------------------------------
    def submit(self, path: Iterable[str], size: float, cap: Optional[float] = None,
               label: str = "flow") -> Flow:
        """Start serving ``size`` units of work across ``path``.

        Returns the :class:`Flow`; yield ``flow.done`` to wait. Zero-size
        work completes immediately (the event still goes through the queue so
        ordering stays deterministic).
        """
        path = tuple(path)
        for link in path:
            if link not in self._capacity:
                raise KeyError(f"unknown link {link!r}")
        if size < 0:
            raise ValueError("size must be non-negative")
        if cap is not None and cap <= 0:
            raise ValueError("cap must be positive when given")
        flow = Flow(self, path, size, cap, label)
        if size <= _EPS:
            flow.remaining = 0.0
            flow.done.succeed(self.env.now)
            return flow
        self._advance()
        self._register(flow)
        self._reallocate()
        return flow

    def kill(self, flow: Flow) -> None:
        """Abort a flow; its ``done`` event fails with :class:`FlowKilled`."""
        if flow.done.triggered:
            return
        self._advance()
        self._retire(flow)
        flow.done.fail(FlowKilled(flow.label))
        flow.done.defuse()
        self._reallocate()

    @property
    def active_flows(self) -> tuple[Flow, ...]:
        """Live flows in submission order.

        Deliberately *not* a set: ``Flow`` hashes by identity, so set
        iteration order would follow allocation addresses and fault
        handlers that walk the active flows (node/link kills) would tear
        them down in a process-dependent order.
        """
        return tuple(self._flows)

    def flow_count(self) -> int:
        """Live-flow count without materializing :attr:`active_flows`."""
        return len(self._flows)

    def flows_on(self, link_id: str) -> list[Flow]:
        return list(self._link_members.get(link_id, ()))

    def utilization(self, link_id: str) -> float:
        """Fraction of a link's capacity currently allocated."""
        used = sum(f.rate for f in self._link_members[link_id])
        return used / self._capacity[link_id]

    # -- membership bookkeeping ----------------------------------------------
    def _register(self, flow: Flow) -> None:
        """Add a flow to the maintained link-membership index."""
        self._flow_seq += 1
        flow.seq = self._flow_seq
        links = list(flow.path)
        if flow.cap is not None:
            private = f"__cap__{flow.seq}"
            self._private_caps[private] = flow.cap
            self._link_members[private] = {}
            links.append(private)
        flow.links = tuple(links)
        self._flows[flow] = None
        for link in flow.links:
            self._link_members[link][flow] = None

    def _retire(self, flow: Flow) -> None:
        """Remove a flow (completed or killed) from the maintained index."""
        self._flows.pop(flow, None)
        for link in flow.path:
            members = self._link_members.get(link)
            if members is not None:
                members.pop(flow, None)
        if flow.cap is not None:
            private = flow.links[-1]
            self._private_caps.pop(private, None)
            self._link_members.pop(private, None)

    # -- engine ---------------------------------------------------------------
    def _advance(self) -> None:
        """Charge elapsed work to every flow at its current rate."""
        now = self.env.now
        for flow in self._flows:
            if flow.rate > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate * (now - flow.last_update))
            flow.last_update = now

    def _reallocate(self) -> None:
        """Progressive-filling max-min fair allocation, then retiming."""
        if not self._flows:
            self._wakeup_at = math.inf
            return

        cap_left = dict(self._capacity)
        cap_left.update(self._private_caps)

        unfrozen = set(self._flows)
        rates: dict[Flow, float] = {}
        while unfrozen:
            # Fair headroom per still-active link; membership comes from the
            # maintained index, in deterministic link/flow insertion order.
            bottleneck_share = math.inf
            bottleneck_active: Optional[list[Flow]] = None
            for link, members in self._link_members.items():
                if not members:
                    continue
                active = [f for f in members if f in unfrozen]
                if not active:
                    continue
                share = cap_left[link] / len(active)
                if share < bottleneck_share - _EPS:
                    bottleneck_share = share
                    bottleneck_active = active
            if bottleneck_active is None:  # pragma: no cover - defensive
                break
            for flow in bottleneck_active:
                rates[flow] = bottleneck_share
                unfrozen.discard(flow)
                for link in flow.links:
                    cap_left[link] = max(0.0, cap_left[link] - bottleneck_share)

        earliest_t = math.inf
        now = self.env.now
        for flow in self._flows:
            flow.rate = rates.get(flow, 0.0)
            if flow.rate > _EPS:
                t = now + flow.remaining / flow.rate
                if t < earliest_t:
                    earliest_t = t
        if math.isinf(earliest_t):
            self._wakeup_at = math.inf
        else:
            self._request_wakeup(earliest_t)

    # -- wake-up timers --------------------------------------------------------
    def _request_wakeup(self, at: float) -> None:
        """Ask for the allocator to run at ``at``, coalescing timers.

        A live timer that already fires at or before ``at`` is reused (it
        re-arms itself if it turns out to be early); only an *earlier* wanted
        wake-up arms a fresh timer, superseding the live one by generation.
        """
        self._wakeup_at = at
        if self._timer_at <= at + _EPS:
            return
        self._arm(at)

    def _arm(self, at: float) -> None:
        self._timer_gen += 1
        self.timers_armed += 1
        gen = self._timer_gen
        self._timer_at = at
        timer = self.env.timeout(max(0.0, at - self.env.now))
        timer.callbacks.append(lambda ev: self._on_wakeup(gen))

    @property
    def has_live_timer(self) -> bool:
        return not math.isinf(self._timer_at)

    def _on_wakeup(self, gen: int) -> None:
        if gen != self._timer_gen:
            return  # superseded by a newer (earlier) timer
        self._timer_at = math.inf
        if not self._flows or math.isinf(self._wakeup_at):
            return
        if self.env.now + _EPS < self._wakeup_at:
            # Fired early: the wanted wake-up moved later (e.g. a submit
            # diluted everyone's rate) since this timer was armed. Re-arm
            # once at the current target — still at most one live timer, and
            # exactly one allocator run per effective wake-up.
            self._arm(self._wakeup_at)
            return
        self._wakeup_at = math.inf
        self._advance()
        finished = [f for f in self._flows if f.remaining <= _EPS]
        tracer = self.env.tracer
        for flow in finished:
            self._retire(flow)
            flow.remaining = 0.0
            flow.done.succeed(self.env.now)
            if tracer is not None:
                from ..observe.tracer import CLUSTER
                device = (flow.label.split(":", 1)[0] if ":" in flow.label
                          else "net")
                tracer.async_complete(flow.label, "flow", CLUSTER,
                                      f"fabric:{device}", flow.submitted_at,
                                      size=flow.size)
                tracer.metrics.incr("fabric:flows_completed")
        # Retiming covers the numerical-drift case too: if nothing finished
        # exactly, _reallocate re-requests a wake-up at the refreshed ETA, so
        # no second (duplicate) drift timer is ever armed.
        self._reallocate()


class FairShareDevice:
    """A single-link fabric: a disk, a NIC, or a CPU pool.

    ``capacity`` is in work-units/second. ``execute(size, cap=...)`` submits
    work and returns the flow. A CPU pool models a node's cores: capacity =
    number of cores, each task capped at 1.0 (a thread cannot use more than
    one core), so n tasks on c cores each progress at min(1, c/n) — exactly
    the contention the paper's U+ mode banks on.
    """

    LINK = "device"

    def __init__(self, env: "Environment", capacity: float, name: str = "device") -> None:
        self.env = env
        self.name = name
        self.fabric = SharedFabric(env)
        self.fabric.add_link(self.LINK, capacity)

    @property
    def capacity(self) -> float:
        return self.fabric.capacity(self.LINK)

    def execute(self, size: float, cap: Optional[float] = None, label: str = "work") -> Flow:
        return self.fabric.submit((self.LINK,), size, cap=cap, label=f"{self.name}:{label}")

    def kill(self, flow: Flow) -> None:
        self.fabric.kill(flow)

    @property
    def active_count(self) -> int:
        return self.fabric.flow_count()

    def utilization(self) -> float:
        # Telemetry probes read every node's devices on a cadence; the
        # idle-device fast path keeps that walk from paying a genexpr sum
        # per node (same-module private access, not an API).
        fabric = self.fabric
        if not fabric._flows:
            return 0.0
        return fabric.utilization(self.LINK)
