"""Physical-cluster substrate: machines, devices, network, topology.

* :class:`ResourceVector` — memory+vcores arithmetic (YARN ``Resource``).
* :class:`SharedFabric` / :class:`FairShareDevice` — max-min fair capacity
  sharing; used for disks, CPU pools, and the network.
* :class:`Node` — a machine with a :class:`CpuPool` and :class:`DiskDevice`.
* :class:`ClusterNetwork` — two-level (rack/core) network fabric.
* :class:`Topology` / :class:`Locality` — rack membership and Hadoop-style
  network distances.
"""

from .fabric import FairShareDevice, Flow, FlowKilled, SharedFabric
from .network import ClusterNetwork
from .node import CpuPool, DiskDevice, Node
from .resources import ResourceVector, dominant_resource
from .topology import Locality, Topology

__all__ = [
    "ClusterNetwork",
    "CpuPool",
    "DiskDevice",
    "FairShareDevice",
    "Flow",
    "FlowKilled",
    "Locality",
    "Node",
    "ResourceVector",
    "SharedFabric",
    "Topology",
    "dominant_resource",
]
