"""Physical machines: CPU pool, disk device, and node identity."""

from __future__ import annotations

from typing import TYPE_CHECKING

from .fabric import FairShareDevice, Flow
from .resources import ResourceVector

if TYPE_CHECKING:  # pragma: no cover
    from ..simulation.core import Environment


class DiskDevice:
    """A node's disk with sequential read/write rates and a seek penalty.

    Work is normalized to *device-seconds*: an op of ``mb`` megabytes at rate
    ``r`` MB/s costs ``mb / r`` device-seconds and concurrent ops
    processor-share the device. On top of fair sharing, a spinning disk's
    *aggregate* throughput collapses under concurrent streams (head seeks
    between them): with ``n`` active ops the device capacity is scaled by
    ``1 / (1 + seek_penalty * (n - 1))``. This is the mechanism that makes
    the stock scheduler's node-packing genuinely expensive — eight packed
    readers are far worse than 8x one reader.
    """

    def __init__(self, env: "Environment", read_mb_s: float, write_mb_s: float,
                 name: str = "disk", seek_penalty: float = 0.3) -> None:
        if read_mb_s <= 0 or write_mb_s <= 0:
            raise ValueError("disk rates must be positive")
        if seek_penalty < 0:
            raise ValueError("seek_penalty cannot be negative")
        self.read_mb_s = read_mb_s
        self.write_mb_s = write_mb_s
        self.seek_penalty = seek_penalty
        #: Gray-failure knob: >1 slows every op (sick disk, throttled volume).
        self.slowdown = 1.0
        self._device = FairShareDevice(env, capacity=1.0, name=name)

    def _capacity_for(self, n_ops: int) -> float:
        base = 1.0
        if n_ops > 1:
            base = 1.0 / (1.0 + self.seek_penalty * (n_ops - 1))
        return base / self.slowdown

    def set_slowdown(self, factor: float) -> None:
        """Degrade (or restore, factor=1.0) the device; in-flight ops adjust."""
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        self.slowdown = float(factor)
        n = max(1, self._device.active_count)
        self._device.fabric.set_capacity(FairShareDevice.LINK, self._capacity_for(n))

    def fail_active(self) -> int:
        """Kill every in-flight op (the machine died under them).

        Waiters see :class:`~repro.cluster.fabric.FlowKilled` through each
        flow's ``done`` event. Returns the number of flows killed.
        """
        victims = list(self._device.fabric.active_flows)
        for flow in victims:
            self._device.kill(flow)
        return len(victims)

    def _submit(self, device_seconds: float, label: str) -> Flow:
        n_after = self._device.active_count + 1
        self._device.fabric.set_capacity(FairShareDevice.LINK,
                                         self._capacity_for(n_after))
        flow = self._device.execute(device_seconds, cap=1.0, label=label)
        flow.done.callbacks.append(lambda _ev: self._op_finished())
        return flow

    def _op_finished(self) -> None:
        n = max(1, self._device.active_count)
        self._device.fabric.set_capacity(FairShareDevice.LINK, self._capacity_for(n))

    def read(self, mb: float, label: str = "read") -> Flow:
        return self._submit(mb / self.read_mb_s, label)

    def write(self, mb: float, label: str = "write") -> Flow:
        return self._submit(mb / self.write_mb_s, label)

    def kill(self, flow: Flow) -> None:
        self._device.kill(flow)

    @property
    def active_ops(self) -> int:
        return self._device.active_count


class CpuPool:
    """A node's cores as a fair-shared pool.

    Capacity equals the number of cores; every task is capped at one core,
    so ``n`` runnable tasks on ``c`` cores each progress at ``min(1, c/n)``.
    """

    def __init__(self, env: "Environment", cores: int, name: str = "cpu") -> None:
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.cores = cores
        self._device = FairShareDevice(env, capacity=float(cores), name=name)

    def compute(self, cpu_seconds: float, label: str = "compute") -> Flow:
        return self._device.execute(cpu_seconds, cap=1.0, label=label)

    def kill(self, flow: Flow) -> None:
        self._device.kill(flow)

    @property
    def running(self) -> int:
        return self._device.active_count

    def utilization(self) -> float:
        return self._device.utilization()


class Node:
    """A cluster machine: identity, capacity spec, and its local devices."""

    def __init__(self, env: "Environment", node_id: str, rack: str,
                 cores: int, memory_mb: int,
                 disk_read_mb_s: float = 100.0, disk_write_mb_s: float = 80.0,
                 disk_seek_penalty: float = 0.3) -> None:
        self.env = env
        self.node_id = node_id
        self.rack = rack
        self.capability = ResourceVector(memory_mb=memory_mb, vcores=cores)
        self.cpu = CpuPool(env, cores, name=f"{node_id}.cpu")
        self.disk = DiskDevice(env, disk_read_mb_s, disk_write_mb_s,
                               name=f"{node_id}.disk", seek_penalty=disk_seek_penalty)

    def __repr__(self) -> str:
        return f"<Node {self.node_id} rack={self.rack} {self.capability}>"

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.node_id == self.node_id
