"""Rack topology and locality classification (Hadoop network-distance style)."""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Sequence

from .node import Node


class Locality(enum.IntEnum):
    """Container-placement locality relative to a task's input data.

    Order matters: lower is better, and the D+ scheduler serves requests in
    NODE_LOCAL -> RACK_LOCAL -> ANY order (paper Algorithm 1, line 1).
    """

    NODE_LOCAL = 0
    RACK_LOCAL = 1
    ANY = 2


class Topology:
    """Node/rack membership with Hadoop-style network distances."""

    def __init__(self, nodes: Sequence[Node]) -> None:
        if not nodes:
            raise ValueError("topology needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in topology")
        self._nodes: dict[str, Node] = {n.node_id: n for n in nodes}
        self._racks: dict[str, list[Node]] = {}
        for node in nodes:
            self._racks.setdefault(node.rack, []).append(node)

    def add(self, node: Node) -> None:
        """Register a node added after construction (elastic scale-up)."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._racks.setdefault(node.rack, []).append(node)

    def remove(self, node_id: str) -> Node:
        """Forget a decommissioned node (its id must never be reused)."""
        node = self._nodes.pop(node_id, None)
        if node is None:
            raise KeyError(f"unknown node {node_id!r}")
        rack = self._racks.get(node.rack)
        if rack is not None:
            rack.remove(node)
            if not rack:
                del self._racks[node.rack]
        return node

    # -- lookup ------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        return self._nodes[node_id]

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    @property
    def node_ids(self) -> list[str]:
        return list(self._nodes.keys())

    @property
    def racks(self) -> list[str]:
        return list(self._racks.keys())

    def rack_of(self, node_id: str) -> str:
        return self._nodes[node_id].rack

    def nodes_in_rack(self, rack: str) -> list[Node]:
        return list(self._racks.get(rack, []))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # -- distances ------------------------------------------------------------
    def distance(self, a: str, b: str) -> int:
        """Hadoop network distance: 0 same node, 2 same rack, 4 off rack."""
        if a == b:
            return 0
        if self.rack_of(a) == self.rack_of(b):
            return 2
        return 4

    def locality(self, node_id: str, replica_nodes: Iterable[str]) -> Locality:
        """Best locality of ``node_id`` relative to any of ``replica_nodes``."""
        best = Locality.ANY
        rack = self.rack_of(node_id)
        for replica in replica_nodes:
            if replica == node_id:
                return Locality.NODE_LOCAL
            if replica in self and self.rack_of(replica) == rack:
                best = Locality.RACK_LOCAL
        return best

    def closest_replica(self, node_id: str, replica_nodes: Sequence[str]) -> Optional[str]:
        """The replica holder nearest to ``node_id`` (ties: first listed)."""
        best: Optional[str] = None
        best_distance = 10
        for replica in replica_nodes:
            if replica not in self:
                continue
            d = self.distance(node_id, replica)
            if d < best_distance:
                best_distance = d
                best = replica
        return best
