"""Resource vectors (memory + vcores) and dominant-resource arithmetic.

Mirrors YARN's ``Resource`` record. The D+ scheduler sorts nodes by available
*dominant* resource — the resource type with the highest cluster-wide usage
ratio (defined over the whole cluster, unlike per-user DRF; see paper §III-A).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceVector:
    """An amount of schedulable resource: megabytes of memory and vcores."""

    memory_mb: int
    vcores: int

    def __post_init__(self) -> None:
        if self.memory_mb < 0 or self.vcores < 0:
            raise ValueError(f"resources cannot be negative: {self}")

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.memory_mb + other.memory_mb, self.vcores + other.vcores)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.memory_mb - other.memory_mb, self.vcores - other.vcores)

    def __mul__(self, k: int) -> "ResourceVector":
        return ResourceVector(self.memory_mb * k, self.vcores * k)

    __rmul__ = __mul__

    # -- comparisons ----------------------------------------------------------
    def fits_in(self, other: "ResourceVector") -> bool:
        """True when this demand can be satisfied from ``other``."""
        return self.memory_mb <= other.memory_mb and self.vcores <= other.vcores

    def is_zero(self) -> bool:
        return self.memory_mb == 0 and self.vcores == 0

    # -- dominant resource ------------------------------------------------------
    def usage_ratios(self, total: "ResourceVector") -> tuple[float, float]:
        """(memory ratio, vcore ratio) of this amount against ``total``."""
        mem = self.memory_mb / total.memory_mb if total.memory_mb else 0.0
        cpu = self.vcores / total.vcores if total.vcores else 0.0
        return mem, cpu

    def dominant_share(self, total: "ResourceVector") -> float:
        return max(self.usage_ratios(total))

    def component(self, which: str) -> int:
        if which == "memory":
            return self.memory_mb
        if which == "vcores":
            return self.vcores
        raise ValueError(f"unknown resource component {which!r}")

    @staticmethod
    def zero() -> "ResourceVector":
        return ResourceVector(0, 0)

    def __str__(self) -> str:
        return f"<mem {self.memory_mb} MB, {self.vcores} vcores>"


def dominant_resource(used: ResourceVector, total: ResourceVector) -> str:
    """Which resource type has the highest cluster-wide usage ratio.

    Paper §III-A: "Dominant resource is a kind of resource such as CPU or
    memory that has the highest usage ratio in the cluster."
    """
    mem_ratio, cpu_ratio = used.usage_ratios(total)
    return "memory" if mem_ratio >= cpu_ratio else "vcores"
