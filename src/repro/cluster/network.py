"""Cluster network fabric: NICs, rack switches, a core switch.

Transfers are flows on a :class:`~repro.cluster.fabric.SharedFabric` whose
links are each node's NIC (full duplex: separate in/out links), each rack's
uplink/downlink to the core, and the core switch itself. Same-node transfers
bypass the network entirely (HDFS short-circuit reads). Allocation across
concurrent transfers is max-min fair, so a reducer fetching from four mappers
on one node sees that node's NIC shared four ways.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .fabric import Flow, SharedFabric
from .node import Node

if TYPE_CHECKING:  # pragma: no cover
    from ..simulation.core import Environment


class ClusterNetwork:
    """Hierarchical two-level network with configurable oversubscription."""

    def __init__(self, env: "Environment", nodes: list[Node], bandwidth_mb_s: float = 120.0,
                 rack_uplink_mb_s: Optional[float] = None, core_mb_s: Optional[float] = None) -> None:
        if bandwidth_mb_s <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.bandwidth_mb_s = bandwidth_mb_s
        self.fabric = SharedFabric(env)
        self._racks: set[str] = {n.rack for n in nodes}
        self._node_rack: dict[str, str] = {n.node_id: n.rack for n in nodes}

        for node in nodes:
            self.fabric.add_link(f"nic_out:{node.node_id}", bandwidth_mb_s)
            self.fabric.add_link(f"nic_in:{node.node_id}", bandwidth_mb_s)

        # Default to a non-blocking fabric (cloud VMs see no visible rack
        # oversubscription); pass rack_uplink_mb_s to model an oversubscribed
        # rack switch explicitly.
        per_rack = max(
            (sum(1 for n in nodes if n.rack == rack) for rack in self._racks), default=1
        )
        uplink = rack_uplink_mb_s if rack_uplink_mb_s is not None else bandwidth_mb_s * per_rack
        core = core_mb_s if core_mb_s is not None else uplink * max(1, len(self._racks))
        for rack in self._racks:
            self.fabric.add_link(f"rack_up:{rack}", uplink)
            self.fabric.add_link(f"rack_down:{rack}", uplink)
        self.fabric.add_link("core", core)

    def add_node(self, node: Node) -> None:
        """Register a node added after construction (e.g. elastic tests)."""
        self._node_rack[node.node_id] = node.rack
        self.fabric.add_link(f"nic_out:{node.node_id}", self.bandwidth_mb_s)
        self.fabric.add_link(f"nic_in:{node.node_id}", self.bandwidth_mb_s)
        if node.rack not in self._racks:
            self._racks.add(node.rack)
            uplink = self.bandwidth_mb_s
            self.fabric.add_link(f"rack_up:{node.rack}", uplink)
            self.fabric.add_link(f"rack_down:{node.rack}", uplink)

    def path(self, src: str, dst: str) -> tuple[str, ...]:
        """Link path between two node ids; empty for same-node transfers."""
        if src == dst:
            return ()
        src_rack = self._node_rack[src]
        dst_rack = self._node_rack[dst]
        if src_rack == dst_rack:
            return (f"nic_out:{src}", f"nic_in:{dst}")
        return (
            f"nic_out:{src}",
            f"rack_up:{src_rack}",
            "core",
            f"rack_down:{dst_rack}",
            f"nic_in:{dst}",
        )

    def transfer(self, src: str, dst: str, mb: float, label: str = "xfer") -> Flow:
        """Move ``mb`` megabytes from ``src`` to ``dst``; returns the flow.

        Same-node transfers complete immediately (zero-size flow on an empty
        path is still an event, so callers can yield it uniformly).
        """
        path = self.path(src, dst)
        if not path:
            return self.fabric.submit((), 0.0, label=label)
        return self.fabric.submit(path, mb, label=label)

    def kill(self, flow: Flow) -> None:
        self.fabric.kill(flow)

    # -- fault hooks --------------------------------------------------------
    def _node_links(self, node_id: str) -> tuple[str, str]:
        if node_id not in self._node_rack:
            raise KeyError(f"unknown node {node_id!r}")
        return (f"nic_out:{node_id}", f"nic_in:{node_id}")

    def set_node_degradation(self, node_id: str, factor: float) -> None:
        """Degrade a node's NIC by ``factor`` (>1 = slower; 1.0 restores).

        A very large factor approximates a network partition: capacity must
        stay positive, so in-flight transfers stall to a crawl instead of
        erroring, and heal transparently when the degradation is lifted —
        exactly how a gray network failure looks to the application.
        """
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        for link in self._node_links(node_id):
            self.fabric.set_capacity(link, self.bandwidth_mb_s / factor)

    def restore_node(self, node_id: str) -> None:
        self.set_node_degradation(node_id, 1.0)

    def fail_node_flows(self, node_id: str) -> int:
        """Kill every in-flight transfer touching ``node_id`` (machine died).

        Returns the number of flows killed; their waiters observe
        :class:`~repro.cluster.fabric.FlowKilled`.
        """
        links = set(self._node_links(node_id))
        victims = [f for f in self.fabric.active_flows
                   if links.intersection(f.path)]
        for flow in victims:
            self.fabric.kill(flow)
        return len(victims)

    @property
    def active_transfers(self) -> int:
        return len(self.fabric.active_flows)
