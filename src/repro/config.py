"""Configuration: Azure instance catalog (Table II), cluster and Hadoop knobs.

All times are seconds, all sizes megabytes, matching the rest of the project.
The default constants are calibrated so the *relative* results of the paper's
evaluation reproduce; see DESIGN.md §6 and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .cluster.resources import ResourceVector

#: One HDFS block (Hadoop 2.2 default dfs.blocksize = 64 MB).
DEFAULT_BLOCK_SIZE_MB = 64.0


@dataclass(frozen=True)
class InstanceType:
    """A Microsoft Azure VM flavor (paper Table II)."""

    name: str
    cores: int
    memory_gb: float
    disk_gb: int
    price_per_hour: float
    #: Measured-ish local disk throughput for the A-series (MB/s) — Azure
    #: standard (HDD-backed, shared) storage, far below dedicated spindles.
    disk_read_mb_s: float = 50.0
    disk_write_mb_s: float = 40.0
    #: Aggregate-throughput collapse under n concurrent streams (HDD seeks):
    #: capacity scale = 1 / (1 + penalty * (n - 1)).
    disk_seek_penalty: float = 0.3
    #: Effective inter-VM throughput (MB/s); 2013-era A-series networking ran
    #: at a few hundred Mbit/s, nowhere near line rate.
    network_mb_s: float = 25.0

    @property
    def memory_mb(self) -> int:
        return int(self.memory_gb * 1024)

    def capability(self) -> ResourceVector:
        return ResourceVector(memory_mb=self.memory_mb, vcores=self.cores)


#: Paper Table II: Microsoft Azure instance types. Larger A-series VMs got
#: proportionally more storage/network bandwidth (striped standard storage),
#: which is what makes the equal-cost comparison of Figure 13 interesting.
INSTANCE_TYPES: dict[str, InstanceType] = {
    "A1": InstanceType("A1", cores=1, memory_gb=1.75, disk_gb=70, price_per_hour=0.09,
                       disk_read_mb_s=40.0, disk_write_mb_s=32.0, network_mb_s=20.0),
    "A2": InstanceType("A2", cores=2, memory_gb=3.5, disk_gb=135, price_per_hour=0.18,
                       disk_read_mb_s=50.0, disk_write_mb_s=40.0, network_mb_s=25.0),
    "A3": InstanceType("A3", cores=4, memory_gb=7.0, disk_gb=285, price_per_hour=0.36,
                       disk_read_mb_s=60.0, disk_write_mb_s=48.0, network_mb_s=30.0),
}


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of a simulated cluster: N DataNodes of one instance type."""

    instance: InstanceType
    num_datanodes: int
    racks: int = 2
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_datanodes < 1:
            raise ValueError("need at least one DataNode")
        if self.racks < 1 or self.racks > self.num_datanodes:
            raise ValueError("racks must be in [1, num_datanodes]")

    @property
    def hourly_cost(self) -> float:
        # NameNode + DataNodes, as in the paper's equal-cost comparison.
        return (self.num_datanodes + 1) * self.instance.price_per_hour

    def total_capability(self) -> ResourceVector:
        return self.instance.capability() * self.num_datanodes


def a3_cluster(num_datanodes: int = 4) -> ClusterSpec:
    """Paper's first testbed: 1 NameNode + 4 A3 DataNodes."""
    return ClusterSpec(INSTANCE_TYPES["A3"], num_datanodes,
                       racks=min(2, num_datanodes), name=f"A3x{num_datanodes}")


def a2_cluster(num_datanodes: int = 9) -> ClusterSpec:
    """Paper's second testbed: 1 NameNode + 9 A2 DataNodes."""
    return ClusterSpec(INSTANCE_TYPES["A2"], num_datanodes,
                       racks=min(3, num_datanodes), name=f"A2x{num_datanodes}")


#: SLO classes the serving layer distinguishes (:mod:`repro.serving`).
SLO_LATENCY = "latency"
SLO_BATCH = "batch"
SLO_CLASSES = (SLO_LATENCY, SLO_BATCH)


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the SLO-aware serving layer (:mod:`repro.serving`).

    Attached to :class:`HadoopConfig` as ``conf.serving``; the default
    ``None`` keeps every figure and replay byte-identical to the
    pre-serving behaviour. Constructing one enables outcome accounting;
    ``admission``/``degradation``/``autoscale`` gate the active policies.
    """

    # -- SLO classes ---------------------------------------------------------
    #: Deadline applied to latency-class jobs whose template/trace line
    #: does not carry an explicit one (seconds after arrival).
    latency_deadline_s: float = 60.0

    # -- admission control --------------------------------------------------
    #: Size-based admission: reject latency jobs whose predicted sojourn
    #: already busts their deadline, bound the pending queue, shed batch
    #: work first. Off = every job is submitted straight to YARN.
    admission: bool = True
    #: Pending (admitted-but-not-yet-dispatched) queue bound.
    max_pending: int = 24
    #: Jobs dispatched concurrently per *healthy* node (the serving-layer
    #: concurrency window in front of YARN's own AM admission control).
    slots_per_node: int = 3
    #: Instead of rejecting a latency job whose predicted sojourn busts its
    #: deadline, demote it to batch (it runs, but its deadline is void).
    downgrade_over_reject: bool = False
    #: Client retry-with-backoff for rejected submissions: attempt n waits
    #: ``retry_backoff_s * 2**(n-1)`` before re-offering, up to ``retry_max``
    #: retries (0 = fail fast).
    retry_backoff_s: float = 5.0
    retry_max: int = 2

    # -- overload degradation ladder -----------------------------------------
    degradation: bool = True
    #: Pending-queue fraction at which the ladder reaches level 1 (force
    #: uber/U+ for latency jobs, suspend speculation for batch).
    degrade_at_pending_fraction: float = 0.5

    # -- reactive autoscaling -------------------------------------------------
    autoscale: bool = False
    min_nodes: int = 2
    max_nodes: int = 8
    #: Evaluation cadence of the autoscaler control loop (simulated s).
    autoscale_interval_s: float = 5.0
    #: Simulated VM boot + daemon start before a provisioned node joins.
    provision_delay_s: float = 20.0
    #: Consecutive calm evaluations required before draining a node.
    scale_down_after_rounds: int = 4
    #: Scale up when pending-per-healthy-node exceeds this.
    scale_up_pending_per_node: float = 1.0
    #: ... or when windowed latency SLO attainment falls below this.
    attainment_floor: float = 0.9

    # -- size estimator -------------------------------------------------------
    #: Optimistic first guess for unseen job signatures (same first-samples
    #: strategy as HFSP training) and the EWMA weight of new observations.
    initial_guess_s: float = 8.0
    estimator_alpha: float = 0.4

    def with_(self, **kwargs) -> "ServingConfig":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class TunerConfig:
    """Knobs of the self-optimizing mode picker (:mod:`repro.tuner`).

    Attached to :class:`HadoopConfig` as ``conf.tuner``; the default ``None``
    disables the tuner entirely — no store is opened, the ``auto`` replay
    strategy falls back to the Eq. 1–3 analytic decision, and every figure
    snapshot stays byte-identical. Constructing one with ``history_db`` set
    enables online learning: completed runs are recorded per
    ``(signature, mode)`` and future ``auto`` decisions exploit the learned
    estimates once each candidate has ``train_runs`` successful samples.
    """

    #: Path of the durable :class:`~repro.tuner.store.RunHistoryStore`.
    #: ``*.json`` selects the JSON fallback backend, anything else SQLite,
    #: ``":memory:"`` an in-process store (learning without persistence).
    #: ``None`` disables learning — ``auto`` stays purely analytic.
    history_db: Optional[str] = None
    #: Successful samples required per (signature, candidate) before the
    #: picker stops exploring that signature and exploits the argmin
    #: estimate — HFSP's train-then-estimate discipline applied to modes.
    train_runs: int = 1
    #: EWMA weight of new observations in the learned service-time
    #: estimate (same semantics as ``ServingConfig.estimator_alpha``).
    ewma_alpha: float = 0.4
    #: Streaming percentile the estimator exposes alongside the EWMA
    #: (tail-latency view of a signature×mode cell; P² estimated).
    percentile: float = 95.0
    #: Bounded per-(signature, mode) ring: the store retains at most this
    #: many most-recent runs per cell, so a long-lived history file stays
    #: O(signatures × modes × ring_size) however many replays feed it.
    ring_size: int = 64
    #: Candidate modes the ``auto`` picker chooses among, in deterministic
    #: exploration order. ``speculative`` is a valid extra candidate but
    #: costs duplicate launches, so it is not explored by default.
    candidates: tuple = ("stock", "dplus", "uplus", "uber")

    def with_(self, **kwargs) -> "TunerConfig":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of the continuous-telemetry subsystem (:mod:`repro.telemetry`).

    Attached to :class:`HadoopConfig` as ``conf.telemetry``; the default
    ``None`` disables telemetry entirely — no scraper hook is installed,
    every instrumentation site costs one ``is not None`` attribute read,
    and all figure snapshots stay byte-identical. Constructing one enables
    sim-time scraping into bounded ring buffers plus (when ``alerts``) the
    alert-rule engine.
    """

    # -- scraping -------------------------------------------------------------
    #: Sampling cadence in *simulated* seconds. Samples are taken from the
    #: kernel's event-pop hook, so scraping adds zero events to the
    #: schedule and cannot perturb event order.
    scrape_interval_s: float = 1.0
    #: Ring-buffer length per series; older samples are evicted, bounding
    #: retention at ``retention_samples * num_series`` floats.
    retention_samples: int = 512
    #: When the kernel sleeps across many scrape grid points (an idle gap),
    #: at most this many catch-up samples are emitted per popped event; the
    #: rest are skipped and counted in ``samples_skipped``.
    catchup_limit: int = 8
    #: Minimum simulated seconds between recomputes of the O(nodes) probes
    #: (per-node utilization, per-rack liveness, heartbeat staleness,
    #: most-loaded fabric link).
    #: Scrapes between recomputes re-export the cached values, keeping the
    #: 1 s scrape cadence affordable at 10k nodes.
    node_probe_interval_s: float = 5.0

    # -- alert rules ----------------------------------------------------------
    alerts: bool = True
    #: SLO attainment target the error budget is measured against
    #: (budget = 1 - slo_target).
    slo_target: float = 0.9
    #: Multi-window burn-rate alerting (Google SRE style): fire when the
    #: error budget burns faster than ``burn_threshold``× the sustainable
    #: rate over *both* the fast and the slow window.
    burn_fast_window_s: float = 30.0
    burn_slow_window_s: float = 180.0
    burn_threshold: float = 2.0
    #: Queue saturation: pending/max_pending at or above this fraction for
    #: this many consecutive scrapes.
    queue_saturation_fraction: float = 0.9
    queue_saturation_samples: int = 3
    #: A node is heartbeat-stale when silent for more than this multiple of
    #: the NM heartbeat interval.
    heartbeat_stale_factor: float = 3.0
    #: Under-replication: nonzero under-replicated block count for this
    #: many consecutive scrapes.
    under_replication_samples: int = 3

    def with_(self, **kwargs) -> "TelemetryConfig":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class HadoopConfig:
    """Timing and sizing knobs of the simulated Hadoop 2.2 stack."""

    # -- heartbeats (seconds) -------------------------------------------------
    nm_heartbeat_s: float = 1.0        # yarn.resourcemanager.nodemanagers.heartbeat-interval-ms
    am_heartbeat_s: float = 1.0        # MRAppMaster allocate interval
    rpc_latency_s: float = 0.005       # one-way RPC latency
    #: Phase quantum of the NM heartbeat wheel: node phase offsets snap to
    #: this grid so cohorts of nodes share beat instants and one aggregate
    #: tick serves all of them (essential at 1k-10k nodes). 0.0 keeps every
    #: node's exact per-node phase — byte-identical to the historical
    #: per-process heartbeat loops.
    nm_heartbeat_quantum_s: float = 0.0

    # -- container / JVM costs --------------------------------------------------
    container_launch_s: float = 2.5    # t^l: JVM start + localization
    am_init_s: float = 1.5             # AM parses conf, downloads splits
    task_setup_s: float = 0.4          # per-task setup sub-phase inside the JVM
    uber_task_setup_s: float = 0.1     # per-task setup when reusing the AM JVM
    client_submit_s: float = 0.8       # job-file upload + submission round trips
    task_commit_rpc_s: float = 0.05    # per-task status/commit round-trips via
                                       # the stock RM/umbilical path; MRapid's
                                       # RPC framework short-circuits these

    # -- container sizing ----------------------------------------------------------
    container_memory_mb: int = 1024    # mapreduce.map.memory.mb
    container_vcores: int = 1
    am_memory_mb: int = 1536
    am_vcores: int = 1
    containers_per_core: int = 1       # Fig 12 varies this via vcore multiplier
    #: yarn.scheduler.capacity.maximum-am-resource-percent: at most this
    #: fraction of cluster memory may be held by ApplicationMaster
    #: containers; further apps wait in the AM queue. 1.0 (no limit)
    #: preserves the one-shot figure behaviour; the heavy-traffic replay
    #: harness lowers it so admission control (and hence job *ordering*)
    #: matters, as on a real loaded cluster.
    am_resource_fraction: float = 1.0

    # -- MapReduce behaviour ----------------------------------------------------
    block_size_mb: float = DEFAULT_BLOCK_SIZE_MB
    sort_buffer_mb: float = 100.0      # mapreduce.task.io.sort.mb
    replication: int = 3
    slowstart_completed_maps: float = 0.05  # mapreduce.job.reduce.slowstart.completedmaps

    # -- Uber thresholds (Hadoop defaults) -----------------------------------------
    uber_max_maps: int = 9
    uber_max_reduces: int = 1

    # -- fault tolerance -------------------------------------------------------------
    max_task_attempts: int = 4         # mapreduce.map/reduce.maxattempts
    am_max_attempts: int = 2           # yarn.resourcemanager.am.max-attempts
    #: Second AM attempt replays completed-task history instead of re-running
    #: the whole job (yarn.app.mapreduce.am.job.recovery.enable).
    am_work_preserving_recovery: bool = True
    #: AM-level node blacklisting (yarn.app.mapreduce.am.job.node-blacklisting
    #: .enable + mapreduce.job.maxtaskfailures.per.tracker).
    node_blacklist_enabled: bool = True
    max_failures_per_node: int = 3

    # -- in-job straggler speculation (mapreduce.map.speculative) ----------------------
    # Distinct from MRapid's *mode* speculation: this duplicates slow task
    # attempts within one job. Off by default so the calibrated figures match
    # a stock-configured cluster; the straggler benchmarks turn it on.
    speculative_tasks: bool = False
    speculative_slowness: float = 1.5  # duplicate when elapsed > 1.5x avg
    speculative_min_completed: int = 1 # need this many finished maps first

    # -- SLO-aware serving mode (repro.serving) ---------------------------------
    #: ``None`` (the default) disables the serving layer entirely, keeping
    #: every one-shot figure and replay byte-identical to earlier releases.
    serving: Optional[ServingConfig] = None

    # -- continuous telemetry (repro.telemetry) ---------------------------------
    #: ``None`` (the default) disables the telemetry subsystem; replays and
    #: figures behave byte-identically to earlier releases.
    telemetry: Optional[TelemetryConfig] = None

    # -- self-optimizing mode picker (repro.tuner) ------------------------------
    #: ``None`` (the default) disables the run-history tuner; the ``auto``
    #: replay strategy then decides purely from Eq. 1–3 and every existing
    #: figure and replay is byte-identical to earlier releases.
    tuner: Optional[TunerConfig] = None

    def effective_vcores(self, physical_cores: int) -> int:
        """Schedulable vcores a NodeManager advertises (Fig 12 knob)."""
        return physical_cores * self.containers_per_core

    def container_resource(self):
        """The per-task container ask.

        ``containers_per_core > 1`` shrinks per-container memory so the
        cluster admits that many containers per core (how the paper's
        Figure 12 configuration achieves 2 containers/core under Hadoop
        2.2's memory-only DefaultResourceCalculator).
        """
        from .cluster.resources import ResourceVector

        return ResourceVector(self.container_memory_mb // self.containers_per_core,
                              self.container_vcores)

    def with_(self, **kwargs) -> "HadoopConfig":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class MRapidConfig:
    """Feature switches of MRapid; each maps to an optimization the paper
    ablates in Figures 14 and 15."""

    # D+ mode (Fig 14)
    balanced_spread: bool = True        # Algorithm 1 round-robin vs greedy
    locality_aware: bool = True         # NodeLocal -> RackLocal -> ANY ordering
    respond_same_heartbeat: bool = True # allocate from ClusterResource snapshot
    use_am_pool: bool = True            # submission framework AM reuse

    # U+ mode (Fig 15)
    parallel_maps: bool = True          # multithreaded maps in the AM container
    memory_cache: bool = True           # keep intermediate data in RAM
    maps_per_vcore: int = 1             # n_c^m
    memory_cache_limit_mb: float = 256.0

    # shared (both modes)
    reduce_communication: bool = True   # skip per-task commit RPCs (Figs 14/15)

    # extension (paper related-work [14], LARTS): ask for the reduce
    # container on the node holding the most map output, shrinking the
    # shuffle. Off by default — the paper's MRapid does not include it.
    reduce_locality_aware: bool = False

    # speculation
    speculative: bool = True
    am_pool_size: int = 3               # paper default

    def with_(self, **kwargs) -> "MRapidConfig":
        return replace(self, **kwargs)


#: All MRapid optimizations off == stock Hadoop behaviour (ablation anchor).
STOCK_DPLUS = MRapidConfig(
    balanced_spread=False, locality_aware=False,
    respond_same_heartbeat=False, use_am_pool=False,
    parallel_maps=False, memory_cache=False,
    reduce_communication=False,
)
