"""Calibration: measure real engine behaviour, derive simulator profiles.

The simulator's :class:`~repro.workloads.base.WorkloadProfile` constants are
*shape* parameters (output ratios, relative CPU costs). Ratios are measured
directly from the functional engine; absolute CPU rates are scaled to the
paper's 2013-era Java-on-Azure stack through a single ``hardware_factor``
(our vectorized Python on modern hardware is not an A3 running Hadoop 2.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .engine.types import MAP_OUTPUT_BYTES
from .workloads.base import WorkloadProfile
from .workloads.pi import count_inside
from .workloads.terasort import ROW_BYTES, run_terasort, teragen
from .workloads.textgen import generate_files
from .workloads.wordcount import run_wordcount


@dataclass(frozen=True)
class CalibrationReport:
    """Measured quantities + the derived simulator profile."""

    workload: str
    input_mb: float
    measured_map_s_per_mb: float
    measured_output_ratio: float
    measured_raw_output_ratio: float
    hardware_factor: float
    profile: WorkloadProfile


def calibrate_wordcount(sample_mb: float = 0.5, seed: int = 42,
                        hardware_factor: float | None = None) -> CalibrationReport:
    """Run real WordCount on a small corpus and fit the profile.

    ``hardware_factor`` scales measured Python seconds/MB to the target
    platform; by default it is chosen so the calibrated map rate matches the
    canonical WORDCOUNT_PROFILE (0.35 s/MB on an A3 core).
    """
    files = generate_files(1, sample_mb, seed=seed)
    input_bytes = sum(len(c) for _n, c in files)
    input_mb = input_bytes / (1024 * 1024)

    t0 = time.perf_counter()
    combined = run_wordcount(files, use_combiner=True)
    map_s = time.perf_counter() - t0

    raw = run_wordcount(files, use_combiner=False)

    combined_out_mb = combined.counters.get(MAP_OUTPUT_BYTES) / (1024 * 1024)
    # With a combiner the meaningful "map output" is the combined reduce
    # input; approximate from the final aggregated pairs.
    combined_pairs = sum(len(p) for p in combined.partitions)
    avg_word = 7.0
    combined_mb = combined_pairs * (avg_word + 8) / (1024 * 1024)
    raw_mb = raw.counters.get(MAP_OUTPUT_BYTES) / (1024 * 1024)

    measured_rate = map_s / input_mb if input_mb else 0.0
    output_ratio = combined_mb / input_mb if input_mb else 0.0
    raw_ratio = raw_mb / input_mb if input_mb else 0.0

    factor = (hardware_factor if hardware_factor is not None
              else (0.35 / measured_rate if measured_rate > 0 else 1.0))
    profile = WorkloadProfile(
        name="wordcount",
        map_cpu_s_per_mb=measured_rate * factor,
        map_output_ratio=max(0.05, output_ratio),
        map_raw_output_ratio=max(output_ratio, raw_ratio),
        reduce_cpu_s_per_mb=0.15,
        reduce_output_ratio=0.35,
    )
    return CalibrationReport("wordcount", input_mb, measured_rate, output_ratio,
                             raw_ratio, factor, profile)


def calibrate_terasort(num_rows: int = 20_000, seed: int = 3,
                       hardware_factor: float | None = None) -> CalibrationReport:
    """TeraSort is identity map/reduce: ratios must both come out 1.0."""
    files = teragen(num_rows, seed=seed, num_files=4)
    input_mb = num_rows * ROW_BYTES / (1024 * 1024)
    t0 = time.perf_counter()
    output = run_terasort(files, num_reduces=4)
    map_s = time.perf_counter() - t0
    rows_out = sum(len(p) for p in output.partitions)
    ratio = rows_out / num_rows if num_rows else 1.0

    measured_rate = map_s / input_mb if input_mb else 0.0
    factor = (hardware_factor if hardware_factor is not None
              else (0.06 / measured_rate if measured_rate > 0 else 1.0))
    profile = WorkloadProfile(
        name="terasort",
        map_cpu_s_per_mb=measured_rate * factor,
        map_output_ratio=ratio,
        reduce_cpu_s_per_mb=0.08,
        reduce_output_ratio=ratio,
    )
    return CalibrationReport("terasort", input_mb, measured_rate, ratio, ratio,
                             factor, profile)


def calibrate_pi(samples: int = 200_000,
                 hardware_factor: float | None = None) -> float:
    """Seconds per quasi-random sample, scaled to the paper's platform.

    Returns the calibrated ``cost_per_sample_s`` for
    :func:`repro.workloads.base.pi_profile`.
    """
    t0 = time.perf_counter()
    count_inside(0, samples)
    per_sample = (time.perf_counter() - t0) / samples
    if hardware_factor is None:
        # Hadoop's per-sample Java cost on an A3 core was ~5e-8 s (calibrated
        # so the stock Uber/Distributed crossover of Figure 11 lands between
        # 200m and 400m samples); vectorized numpy is far faster, so scale up.
        hardware_factor = 5.0e-8 / per_sample if per_sample > 0 else 1.0
    return per_sample * hardware_factor
