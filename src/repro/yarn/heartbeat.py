"""Batched, phase-staggered NodeManager heartbeat wheel.

Before this module each NodeManager ran its own kernel process::

    yield timeout(offset % period)
    while True:
        rm.node_heartbeat(node_id)
        yield timeout(period)

which costs one generator resume + one Timeout allocation + one queue push
per node per period — the dominant event source on a 10,000-node cluster —
and has two latent bugs this module fixes:

* **Float-error accrual.** Summing ``timeout(period)`` per tick makes the
  k-th beat ``fl(...fl(fl(t0 + p) + p)... )``: k roundings, so at large sim
  times neighbouring nodes' beat order can flip across runs/platforms (the
  MR104 float-time class). The wheel schedules beat *k* at the exact grid
  point ``anchor + k*period`` — one rounding, independent of k — and lands
  the kernel event on that timestamp exactly via ``schedule_at``.
* **Phase loss on rejoin.** ``NodeManager.restart`` used to spawn a fresh
  loop, so a node crashed at ``t`` rejoined with its first beat at
  ``t_restart + offset`` — after a churn plan's mass rejoin, previously
  staggered nodes re-synchronize into a thundering herd. The wheel keeps
  each node's *anchor* forever: a resumed node fires at the next grid point
  of its **original** phase.

One wheel serves every node of an RM. It arms one bare kernel event per
*distinct* upcoming beat instant instead of running N sleeping processes;
a tick delivers every beat due at that instant, in node registration order
— identical to the per-process order, since same-time processes fired in
insertion order. Each successor tick is armed immediately *after* the
node's beat is delivered, which is exactly when the legacy loop created
its next ``Timeout`` — so the tick's insertion order (and hence its
ordering against other events at the very same timestamp) matches the old
per-node timers event for event. Dead (``fail``) and drained nodes are
*suspended*: their entry is detached (token invalidated, lazily skipped)
and no beat is delivered until ``resume``.

``quantum > 0`` (``HadoopConfig.nm_heartbeat_quantum_s``) snaps anchors
onto a coarse phase grid so thousands of nodes share fire times and one
aggregate tick serves whole cohorts. The default 0.0 keeps every node's
exact legacy phase (byte-identical figure snapshots); the scale benchmarks
opt in.
"""

from __future__ import annotations

import math
from itertools import count
from typing import TYPE_CHECKING, Callable, Optional

from ..simulation.bucketq import BucketQueue
from ..simulation.events import DEFERRED, Event

if TYPE_CHECKING:  # pragma: no cover
    from ..simulation.core import Environment


class _Entry:
    """Wheel bookkeeping for one registered node."""

    __slots__ = ("anchor", "seq", "k", "token")

    def __init__(self, anchor: float, seq: int, token: int) -> None:
        #: Absolute time of the node's first-ever beat; the node's phase.
        #: Never changes — resume() lands back on this grid.
        self.anchor = anchor
        #: Registration order; breaks ties between same-instant beats.
        self.seq = seq
        #: Beats delivered so far; next fire is ``anchor + k*period``.
        self.k = 0
        #: Identity of the queued beat. ``None`` while suspended; a queued
        #: entry whose token no longer matches is skipped lazily.
        self.token: Optional[int] = token


class HeartbeatWheel:
    """Aggregated heartbeat timer for all NodeManagers of one RM."""

    def __init__(self, env: "Environment", period: float,
                 deliver: Callable[[str], None], quantum: float = 0.0) -> None:
        if period <= 0:
            raise ValueError(f"heartbeat period must be positive, got {period}")
        if quantum < 0:
            raise ValueError(f"heartbeat quantum cannot be negative, got {quantum}")
        self._env = env
        self._period = period
        self._quantum = quantum
        self._deliver = deliver
        self._entries: dict[str, _Entry] = {}
        self._queue = BucketQueue()
        self._seq = count()
        self._tokens = count()
        #: Beat instants with a tick event already on the kernel queue.
        #: With ``quantum > 0`` whole cohorts share one instant — and one
        #: tick — which is where the 10k-node aggregation win comes from.
        self._armed: set[float] = set()
        self.ticks = 0
        self.heartbeats_delivered = 0

    # -- membership ---------------------------------------------------------
    def register(self, node_id: str, offset: float = 0.0) -> None:
        """Start heartbeating ``node_id``; first beat at ``now + offset%period``.

        Matches the legacy per-process semantics exactly: a node registered
        at time t with phase offset o beats at ``t + o%p, +p, +2p, ...``.
        """
        if node_id in self._entries:
            raise ValueError(f"node {node_id!r} already on the heartbeat wheel")
        anchor = self._env.now + (offset % self._period)
        if self._quantum > 0:
            # Snap to the quantum grid, always forward (never before now).
            anchor = math.ceil(anchor / self._quantum) * self._quantum
        entry = _Entry(anchor, next(self._seq), next(self._tokens))
        self._entries[node_id] = entry
        self._queue.push((anchor, entry.seq, entry.token, node_id))
        self._arm_time(anchor)

    def unregister(self, node_id: str) -> None:
        """Forget ``node_id`` entirely (decommission)."""
        self._entries.pop(node_id, None)

    def suspend(self, node_id: str) -> None:
        """Stop delivering beats (node died or was drained). Idempotent."""
        entry = self._entries.get(node_id)
        if entry is not None:
            entry.token = None

    def resume(self, node_id: str) -> None:
        """Resume beats on the node's *original* phase grid.

        The next beat is the earliest ``anchor + k*period >= now`` — not
        ``now + offset`` — so a mass rejoin after churn keeps the fleet's
        stagger instead of synchronizing into a thundering herd.
        """
        entry = self._entries.get(node_id)
        if entry is None:
            raise KeyError(f"node {node_id!r} is not on the heartbeat wheel")
        if entry.token is not None:
            return  # already beating
        now = self._env.now
        period = self._period
        k = 0
        if now > entry.anchor:
            k = math.ceil((now - entry.anchor) / period)
            # ceil() on floats can land one grid point off; settle on the
            # minimal k with anchor + k*period >= now.
            while entry.anchor + k * period < now:
                k += 1
            while k > 0 and entry.anchor + (k - 1) * period >= now:
                k -= 1
        entry.k = k
        entry.token = next(self._tokens)
        fire = entry.anchor + k * period
        self._queue.push((fire, entry.seq, entry.token, node_id))
        self._arm_time(fire)

    # -- introspection -------------------------------------------------------
    def is_active(self, node_id: str) -> bool:
        entry = self._entries.get(node_id)
        return entry is not None and entry.token is not None

    def anchor_of(self, node_id: str) -> float:
        return self._entries[node_id].anchor

    def next_fire(self, node_id: str) -> Optional[float]:
        """Next beat time for an active node, ``None`` while suspended."""
        entry = self._entries[node_id]
        if entry.token is None:
            return None
        return entry.anchor + entry.k * self._period

    # -- timer machinery -----------------------------------------------------
    def _arm_time(self, when: float) -> None:
        """Put a tick on the kernel queue for beat instant ``when`` (once)."""
        if when in self._armed:
            return
        self._armed.add(when)
        tick = Event(self._env)
        tick._value = None  # pre-triggered, like a Timeout
        tick.callbacks.append(self._make_fire(when))
        # DEFERRED: a beat at time t reports the node's *settled* state at
        # t. Submissions, releases and completions stamped t must be
        # visible to it no matter which order their events were queued in.
        self._env.schedule_at(tick, when, priority=DEFERRED)

    def _make_fire(self, when: float) -> Callable[[Event], None]:
        def fire(_event: Event) -> None:
            self._fire(when)

        return fire

    def _fire(self, when: float) -> None:
        self._armed.discard(when)
        now = self._env.now
        queue = self._queue
        entries = self._entries
        period = self._period
        deliver = self._deliver
        self.ticks += 1
        while True:
            due = queue.peek_time()
            if due is None or due > now:
                break
            _, seq, token, node_id = queue.pop()
            entry = entries.get(node_id)
            if entry is None or entry.token != token:
                continue  # suspended/unregistered after this beat was queued
            # Queue the successor before delivering: if the delivery itself
            # suspends the node, suspend() invalidates this fresh token too.
            entry.k += 1
            entry.token = next(self._tokens)
            nxt = entry.anchor + entry.k * period
            queue.push((nxt, seq, entry.token, node_id))
            self.heartbeats_delivered += 1
            deliver(node_id)
            # Arm the successor *after* delivering, exactly when the legacy
            # per-node loop created its next Timeout — keeps insertion order
            # against other same-instant events byte-identical.
            self._arm_time(nxt)
