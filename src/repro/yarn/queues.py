"""Multi-tenant CapacityScheduler queues.

Paper §II: "Hadoop employs CapacityScheduler by default, which allows
multiple tenants to share a large cluster and allocate resources under
constraints of specified capacities for each user." This module adds that
dimension: named queues with guaranteed capacity fractions and elastic
maximums. Scheduling order follows the real CapacityScheduler: the most
*under-served* queue (lowest used/guaranteed ratio) gets the next
assignment, FIFO within a queue, and a queue may exceed its guarantee up to
``max_fraction`` only while other queues leave capacity idle.

Placement within a heartbeat keeps the stock pathology (memory-only greedy
packing) so MRapid's comparisons stay apples-to-apples in multi-tenant
setups too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .records import Container, NodeState
from .scheduler import PendingAsk, SchedulerBase


@dataclass(frozen=True)
class QueueConfig:
    """One tenant queue: guaranteed and maximum capacity fractions."""

    name: str
    fraction: float              # guaranteed share of cluster memory
    max_fraction: float = 1.0    # elastic ceiling

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1:
            raise ValueError(f"queue {self.name!r}: fraction must be in (0, 1]")
        if not self.fraction <= self.max_fraction <= 1:
            raise ValueError(
                f"queue {self.name!r}: max_fraction must be in [fraction, 1]")


class QueueState:
    """Book-keeping for one queue."""

    def __init__(self, config: QueueConfig) -> None:
        self.config = config
        self.used_memory_mb = 0

    def guaranteed_mb(self, cluster_memory_mb: int) -> float:
        return self.config.fraction * cluster_memory_mb

    def ceiling_mb(self, cluster_memory_mb: int) -> float:
        return self.config.max_fraction * cluster_memory_mb

    def usage_ratio(self, cluster_memory_mb: int) -> float:
        guaranteed = self.guaranteed_mb(cluster_memory_mb)
        return self.used_memory_mb / guaranteed if guaranteed else float("inf")


class MultiTenantCapacityScheduler(SchedulerBase):
    """Queue-aware stock scheduler (heartbeat-driven, memory-only packing)."""

    responds_immediately = False

    def __init__(self, queues: list[QueueConfig],
                 default_queue: Optional[str] = None) -> None:
        super().__init__()
        if not queues:
            raise ValueError("need at least one queue")
        total = sum(q.fraction for q in queues)
        if total > 1.0 + 1e-9:
            raise ValueError(f"queue fractions sum to {total:.2f} > 1")
        self.queues: dict[str, QueueState] = {q.name: QueueState(q) for q in queues}
        self.default_queue = default_queue if default_queue is not None else queues[0].name
        if self.default_queue not in self.queues:
            raise ValueError(f"default queue {self.default_queue!r} not configured")
        #: app_id -> queue name, set at submission.
        self.app_queue: dict[str, str] = {}
        #: Containers *this scheduler* granted (AM containers and pooled AMs
        #: are allocated by the RM directly and must not touch queue usage),
        #: mapped to the queue charged at grant time — release accounting
        #: must not depend on ``app_queue``, which is cleaned when the app
        #: finishes.
        self._granted: dict[int, str] = {}

    # -- wiring -----------------------------------------------------------------
    def assign_app(self, app_id: str, queue: str) -> None:
        if queue not in self.queues:
            raise ValueError(f"unknown queue {queue!r}")
        self.app_queue[app_id] = queue

    def queue_of(self, app_id: str) -> QueueState:
        return self.queues[self.app_queue.get(app_id, self.default_queue)]

    def _cluster_memory(self) -> int:
        return self.rm.total_capability().memory_mb

    # -- scheduling ---------------------------------------------------------------
    def on_node_heartbeat(self, node: NodeState) -> list[tuple[str, Container]]:
        grants: list[tuple[str, Container]] = []
        cluster_mb = self._cluster_memory()
        progressed = True
        while progressed:
            progressed = False
            # Most under-served queue first (lowest used/guaranteed).
            for queue_name in sorted(
                self.queues,
                key=lambda name: (self.queues[name].usage_ratio(cluster_mb), name),
            ):
                pending = self._next_pending(queue_name)
                if pending is None:
                    continue
                queue = self.queues[queue_name]
                demand_mb = pending.request.resource.memory_mb
                if queue.used_memory_mb + demand_mb > queue.ceiling_mb(cluster_mb):
                    continue  # queue at its elastic ceiling
                if node.node_id in pending.request.blacklist:
                    continue
                if not node.can_fit(pending.request.resource, memory_only=True):
                    continue
                container = self._grant(pending, node, memory_only=True)
                queue.used_memory_mb += demand_mb
                self._granted[container.container_id] = queue_name
                self.queue.remove(pending)
                grants.append((pending.app_id, container))
                progressed = True
                break
        return grants

    def _next_pending(self, queue_name: str) -> Optional[PendingAsk]:
        for pending in self.queue:
            if self.app_queue.get(pending.app_id, self.default_queue) == queue_name:
                return pending
        return None

    # -- release accounting ----------------------------------------------------------
    def on_container_released(self, container: Container) -> None:
        queue_name = self._granted.pop(container.container_id, None)
        if queue_name is None:
            return
        queue = self.queues[queue_name]
        queue.used_memory_mb = max(
            0, queue.used_memory_mb - container.resource.memory_mb)

    def remove_app(self, app_id: str) -> None:
        super().remove_app(app_id)
        self.app_queue.pop(app_id, None)

    # -- introspection ------------------------------------------------------------------
    def usage_report(self) -> dict[str, dict[str, float]]:
        cluster_mb = self._cluster_memory()
        return {
            name: {
                "used_mb": float(state.used_memory_mb),
                "guaranteed_mb": state.guaranteed_mb(cluster_mb),
                "ceiling_mb": state.ceiling_mb(cluster_mb),
                "usage_ratio": state.usage_ratio(cluster_mb),
            }
            for name, state in self.queues.items()
        }
