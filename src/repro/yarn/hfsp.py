"""HFSP: practical size-based scheduling for short-job-heavy traffic.

Pastorelli et al. ("HFSP: Size-based Scheduling for Hadoop", and the
follow-up "Practical Size-based Scheduling for MapReduce Workloads") show
that when most jobs are short — exactly the regime MRapid targets — ordering
jobs by *estimated remaining size* dominates both FIFO and fair sharing on
mean sojourn time. This module brings that discipline to the simulated RM:

* **Training phase.** A job's size is unknown at submission. Jobs whose
  signature (application name) has fewer than ``training_samples`` completed
  runs are *in training*: they are scheduled with a small optimistic size
  guess so the cluster measures them quickly, the same first-samples
  strategy :mod:`repro.core.estimator` uses to feed the D+ decision maker.
  Completed runs update a per-signature running mean of service time.

* **Virtual-time aging.** A pure smallest-job-first order starves large
  jobs under sustained short-job arrivals. Every job's priority key is
  ``estimated_size − aging_rate × wait``, so a waiting job's key falls
  linearly in (simulated) wall time and eventually undercuts any freshly
  arrived job, whose key is bounded below by ``−aging_rate × 0 = 0`` minus
  nothing. Starvation is impossible for ``aging_rate > 0`` (the property
  suite checks this with adversarial size mixes).

* **Preemption-free.** Ordering only decides *grant order*; a granted
  container always runs to completion. This matches the paper's finding
  that task-granularity preemption buys little for short jobs and keeps
  the scheduler compatible with every AM in the tree.

* **Queue layering.** With ``queues=[QueueConfig(...)]`` the scheduler
  first picks the most under-served queue exactly like
  :class:`~repro.yarn.queues.MultiTenantCapacityScheduler`, then applies
  HFSP ordering *within* the queue — size-based scheduling under capacity
  guarantees. Queue ceilings are never exceeded.

The scheduler is heartbeat-driven like stock Hadoop (``responds_immediately
= False``): MRapid's D+ same-heartbeat trick is a separate axis, exercised
by running the submission framework on top (see ``repro.trace``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .queues import QueueConfig, QueueState
from .records import Application, Container, ContainerRequest, NodeState
from .scheduler import PendingAsk, SchedulerBase


@dataclass
class SizeStats:
    """Running mean of completed service times for one job signature."""

    samples: int = 0
    total_s: float = 0.0

    def record(self, duration_s: float) -> None:
        self.samples += 1
        self.total_s += duration_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.samples if self.samples else 0.0


@dataclass
class AppRecord:
    """Per-application bookkeeping the priority key is computed from."""

    app_id: str
    name: str
    submit_time: float


class HFSPScheduler(SchedulerBase):
    """Size-based (HFSP-style) scheduler with training and aging."""

    responds_immediately = False

    def __init__(self, training_samples: int = 2, initial_guess_s: float = 8.0,
                 aging_rate: float = 0.1, memory_only: bool = False,
                 queues: Optional[list[QueueConfig]] = None,
                 default_queue: Optional[str] = None) -> None:
        super().__init__()
        if training_samples < 1:
            raise ValueError("training_samples must be >= 1")
        if initial_guess_s <= 0:
            raise ValueError("initial_guess_s must be positive")
        if aging_rate < 0:
            raise ValueError("aging_rate cannot be negative")
        self.training_samples = training_samples
        self.initial_guess_s = initial_guess_s
        self.aging_rate = aging_rate
        #: ``True`` reproduces Hadoop 2.2's DefaultResourceCalculator
        #: (memory-only packing); HFSP defaults to multi-dimensional fit.
        self.memory_only = memory_only
        #: signature/name -> completed service-time statistics.
        self.sizes: dict[str, SizeStats] = {}
        #: app_id -> record (created on first sight of the app).
        self.apps: dict[str, AppRecord] = {}

        # Optional CapacityScheduler queue layer (guarantees + ceilings).
        self.queue_states: dict[str, QueueState] = {}
        self.default_queue: Optional[str] = None
        self.app_queue: dict[str, str] = {}
        #: container_id -> queue name charged at grant time (release
        #: accounting must survive ``remove_app`` cleaning ``app_queue``).
        self._granted: dict[int, str] = {}
        if queues:
            total = sum(q.fraction for q in queues)
            if total > 1.0 + 1e-9:
                raise ValueError(f"queue fractions sum to {total:.2f} > 1")
            self.queue_states = {q.name: QueueState(q) for q in queues}
            self.default_queue = (default_queue if default_queue is not None
                                  else queues[0].name)
            if self.default_queue not in self.queue_states:
                raise ValueError(
                    f"default queue {self.default_queue!r} not configured")

    # -- size estimation -----------------------------------------------------
    def is_trained(self, name: str) -> bool:
        stats = self.sizes.get(name)
        return stats is not None and stats.samples >= self.training_samples

    def estimated_size_s(self, name: str) -> float:
        """Current size estimate for one signature (guess while training)."""
        if self.is_trained(name):
            return self.sizes[name].mean_s
        return self.initial_guess_s

    def priority_key(self, app_id: str, now: float) -> tuple[float, str]:
        """Aged HFSP key: lower schedules first; app_id breaks ties.

        ``estimated_size − aging_rate × wait`` decreases without bound as a
        job waits, so every job eventually outranks all later arrivals.
        """
        record = self.apps[app_id]
        size = self.estimated_size_s(record.name)
        return (size - self.aging_rate * (now - record.submit_time), app_id)

    def _track_app(self, app: Application, now: float) -> None:
        if app.app_id not in self.apps:
            self.apps[app.app_id] = AppRecord(app.app_id, app.name,
                                              app.submit_time or now)

    # -- queue layer ---------------------------------------------------------
    def assign_app(self, app_id: str, queue: str) -> None:
        if queue not in self.queue_states:
            raise ValueError(f"unknown queue {queue!r}")
        self.app_queue[app_id] = queue

    def _queue_of(self, app_id: str) -> Optional[QueueState]:
        if not self.queue_states:
            return None
        return self.queue_states[self.app_queue.get(app_id, self.default_queue)]

    def _queue_allows(self, app_id: str, demand_mb: int) -> bool:
        queue = self._queue_of(app_id)
        if queue is None:
            return True
        ceiling = queue.ceiling_mb(self.rm.total_capability().memory_mb)
        return queue.used_memory_mb + demand_mb <= ceiling

    # -- RM hooks ------------------------------------------------------------
    def on_allocate_request(self, app_id: str,
                            asks: list[ContainerRequest]) -> list[Container]:
        now = self.rm.env.now
        app = self.rm.apps.get(app_id)
        if app is not None:
            self._track_app(app, now)
        for ask in asks:
            self.queue.append(PendingAsk(app_id, ask, now))
        return []

    def am_queue_order(self, apps: list[Application]) -> list[Application]:
        """Serve queued AMs smallest-aged-size first (not FIFO).

        Under heavy short-job traffic most jobs are uberized, so *AM
        allocation order* is where job ordering actually bites; a scheduler
        that only reorders task asks would be size-based in name only.
        """
        now = self.rm.env.now
        for app in apps:
            self._track_app(app, now)
        return sorted(apps, key=lambda app: self.priority_key(app.app_id, now))

    def on_node_heartbeat(self, node: NodeState) -> list[tuple[str, Container]]:
        now = self.rm.env.now
        grants: list[tuple[str, Container]] = []
        if not self.queue_states:
            # Without the queue layer, priority keys are fixed for the whole
            # heartbeat (estimates only move when an app *finishes*, which
            # cannot happen inside this call), so one sort + one pass grants
            # exactly what the historical grant-then-re-rank loop did — the
            # node's availability only shrinks, so previously skipped asks
            # can never fit on a re-rank.
            granted: set[int] = set()
            for pending in self._pending_in_order(now):
                if node.node_id in pending.request.blacklist:
                    continue
                if not node.can_fit(pending.request.resource,
                                    memory_only=self.memory_only):
                    continue
                container = self._grant(pending, node,
                                        memory_only=self.memory_only)
                granted.add(id(pending))
                grants.append((pending.app_id, container))
            if granted:
                self.queue = [p for p in self.queue if id(p) not in granted]
            return grants

        # Queue layer: each grant moves its queue's usage ratio, which can
        # reorder *whole queues*, so re-rank after every grant.
        progressed = True
        while progressed:
            progressed = False
            for pending in self._pending_in_order(now):
                if node.node_id in pending.request.blacklist:
                    continue
                if not node.can_fit(pending.request.resource,
                                    memory_only=self.memory_only):
                    continue
                if not self._queue_allows(pending.app_id,
                                          pending.request.resource.memory_mb):
                    continue
                container = self._grant(pending, node,
                                        memory_only=self.memory_only)
                queue = self._queue_of(pending.app_id)
                if queue is not None:
                    queue.used_memory_mb += pending.request.resource.memory_mb
                    self._granted[container.container_id] = queue.config.name
                self.queue.remove(pending)
                grants.append((pending.app_id, container))
                progressed = True
                break  # re-rank: a grant may change which app is next
        return grants

    def _pending_in_order(self, now: float) -> list[PendingAsk]:
        """All pending asks: under-served queue first, HFSP key within.

        Iterating the *whole* ordered list (not just the head-of-line app)
        makes the scheduler work-conserving: a node is left idle only when
        no pending ask fits it at all.
        """
        for pending in self.queue:
            if pending.app_id not in self.apps:
                app = self.rm.apps.get(pending.app_id)
                if app is not None:
                    self._track_app(app, now)
                else:
                    self.apps[pending.app_id] = AppRecord(
                        pending.app_id, pending.app_id, pending.enqueued_at)

        if not self.queue_states:
            return sorted(self.queue,
                          key=lambda p: (self.priority_key(p.app_id, now),
                                         p.enqueued_at))
        cluster_mb = self.rm.total_capability().memory_mb

        def key(pending: PendingAsk):
            queue = self._queue_of(pending.app_id)
            ratio = queue.usage_ratio(cluster_mb) if queue is not None else 0.0
            return (ratio, self.priority_key(pending.app_id, now),
                    pending.enqueued_at)

        return sorted(self.queue, key=key)

    def on_container_released(self, container: Container) -> None:
        queue_name = self._granted.pop(container.container_id, None)
        if queue_name is None:
            return
        queue = self.queue_states[queue_name]
        queue.used_memory_mb = max(
            0, queue.used_memory_mb - container.resource.memory_mb)

    def on_app_finished(self, app: Application, result=None) -> None:
        """Training feedback: fold the finished job's service time into the
        per-signature estimate. Service time runs from AM launch (not
        submission), so queueing delay under load does not inflate sizes.

        Killed or failed runs carry no usable service time — a kill racing
        the AM's own completion at the same instant, or an AM that died
        with attempts exhausted, would otherwise poison the signature's
        mean with a truncated duration and count toward
        ``training_samples``, graduating the signature on garbage.
        """
        if app.killed or (result is not None
                          and (getattr(result, "killed", False)
                               or getattr(result, "failed", False))):
            return
        record = self.apps.get(app.app_id)
        name = record.name if record is not None else app.name
        started = app.launch_time if app.launch_time > 0 else app.submit_time
        duration = max(0.0, self.rm.env.now - started)
        self.sizes.setdefault(name, SizeStats()).record(duration)

    def remove_app(self, app_id: str) -> None:
        super().remove_app(app_id)
        self.apps.pop(app_id, None)
        self.app_queue.pop(app_id, None)

    def warm_start(self, store) -> None:
        """Seed size statistics from a :class:`repro.tuner.RunHistoryStore`.

        Signatures with recorded *successful* runs start trained (or at
        least part-trained) instead of paying the optimistic-guess phase
        again: each stored success contributes its elapsed seconds exactly
        as if :meth:`on_app_finished` had observed it live. Existing live
        statistics are never overwritten, only absent ones seeded.
        """
        from ..tuner.store import OUTCOME_SUCCESS

        for signature in store.signatures():
            if signature in self.sizes:
                continue
            stats = SizeStats()
            for run in store.runs(signature, outcome=OUTCOME_SUCCESS):
                stats.record(run.elapsed_s)
            if stats.samples:
                self.sizes[signature] = stats

    # -- introspection -------------------------------------------------------
    def size_report(self) -> dict[str, dict[str, float]]:
        return {
            name: {"samples": float(stats.samples), "mean_s": stats.mean_s,
                   "trained": float(stats.samples >= self.training_samples)}
            for name, stats in sorted(self.sizes.items())
        }
