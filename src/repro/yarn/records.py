"""YARN protocol records: containers, requests, node state, applications."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..cluster.resources import ResourceVector
from ..cluster.topology import Locality

if TYPE_CHECKING:  # pragma: no cover
    from ..simulation.events import Event


@dataclass(frozen=True)
class Container:
    """A granted allocation: the right to run one process on a node.

    ``tag`` is only set by schedulers that bind a grant to a specific task
    (the D+ scheduler assigns tasks to nodes itself, Algorithm 1 line 7);
    the stock scheduler leaves it ``None`` and the AM matches by locality.
    """

    container_id: int
    node_id: str
    resource: ResourceVector
    app_id: str
    tag: Any = None


@dataclass
class ContainerRequest:
    """An AM's ask for one container, with data-locality preferences.

    ``preferred_nodes`` are the nodes holding the task's input replicas;
    ``relax_locality`` permits RackLocal/ANY placement (always true for
    MapReduce map requests, as in real Hadoop).
    """

    resource: ResourceVector
    preferred_nodes: tuple[str, ...] = ()
    relax_locality: bool = True
    #: Opaque tag linking the grant back to a task (used by the AMs).
    tag: Any = None
    #: Nodes this request must not be placed on (AM-level blacklisting after
    #: repeated task failures, mapreduce.job.maxtaskfailures.per.tracker).
    blacklist: tuple[str, ...] = ()

    def locality_of(self, node_id: str, topology) -> Locality:
        if not self.preferred_nodes:
            return Locality.ANY
        return topology.locality(node_id, self.preferred_nodes)


@dataclass
class NodeState:
    """The RM's book-keeping for one NodeManager.

    vcores may be *oversubscribed*: Hadoop 2.2's stock CapacityScheduler used
    ``DefaultResourceCalculator``, which packs containers by memory only, so
    a node's scheduled vcores can exceed its physical cores (the resulting
    CPU contention is exactly the imbalance pathology the paper attacks).
    Accounting therefore tracks raw integers; ``available`` floors at zero.
    """

    node_id: str
    capability: ResourceVector
    used_memory_mb: int = 0
    used_vcores: int = 0
    last_heartbeat: float = 0.0
    #: False once the NodeManager is declared lost; no further allocations.
    alive: bool = True
    #: Observer called with the *floored* (memory, vcores) usage delta after
    #: every accounting change. The RM installs one so cluster-wide totals
    #: stay O(1) instead of re-summing 10k nodes on every heartbeat.
    watcher: Optional[Callable[[int, int], None]] = field(
        default=None, repr=False, compare=False)

    @property
    def used(self) -> ResourceVector:
        return ResourceVector(max(0, self.used_memory_mb), max(0, self.used_vcores))

    @property
    def available(self) -> ResourceVector:
        return ResourceVector(
            max(0, self.capability.memory_mb - self.used_memory_mb),
            max(0, self.capability.vcores - self.used_vcores),
        )

    def can_fit(self, demand: ResourceVector, memory_only: bool = False) -> bool:
        """Room check. ``memory_only=True`` is DefaultResourceCalculator."""
        if not self.alive:
            return False
        avail = self.available
        if memory_only:
            return demand.memory_mb <= avail.memory_mb
        return demand.fits_in(avail)

    def allocate(self, demand: ResourceVector, memory_only: bool = False) -> None:
        if not self.can_fit(demand, memory_only=memory_only):
            raise ValueError(f"over-allocation on {self.node_id}: {demand} > {self.available}")
        old_mem, old_vc = self.used_memory_mb, self.used_vcores
        self.used_memory_mb += demand.memory_mb
        self.used_vcores += demand.vcores
        self._changed(old_mem, old_vc)

    def release(self, amount: ResourceVector) -> None:
        old_mem, old_vc = self.used_memory_mb, self.used_vcores
        self.used_memory_mb -= amount.memory_mb
        self.used_vcores -= amount.vcores
        self._changed(old_mem, old_vc)

    def reset_used(self) -> None:
        """Zero the accounting (a rejoining NM restarts empty)."""
        old_mem, old_vc = self.used_memory_mb, self.used_vcores
        self.used_memory_mb = 0
        self.used_vcores = 0
        self._changed(old_mem, old_vc)

    def _changed(self, old_mem: int, old_vc: int) -> None:
        # Deltas are of the floored values (``used`` floors at zero), so a
        # watcher summing them tracks sum-of-``used`` exactly even when a
        # late release drives a rejoined node's raw counter negative.
        if self.watcher is not None:
            self.watcher(max(0, self.used_memory_mb) - max(0, old_mem),
                         max(0, self.used_vcores) - max(0, old_vc))


class IdAllocator:
    """Per-cluster application/container id source.

    Ids must not come from process-wide counters: a simulation's ids — and
    any downstream ordering that keys on them — would then depend on how
    many jobs *earlier* runs in the same process had created, so the same
    experiment could produce different results on its second invocation.
    Each ResourceManager owns one allocator, making every fresh cluster
    start at app_0001 / container 1 regardless of process history.
    """

    __slots__ = ("_apps", "_containers")

    def __init__(self) -> None:
        self._apps = itertools.count(1)
        self._containers = itertools.count(1)

    def next_app_id(self, prefix: str = "app") -> str:
        return f"{prefix}_{next(self._apps):04d}"

    def next_container_id(self) -> int:
        return next(self._containers)


@dataclass
class Application:
    """Handle for a submitted application (one MapReduce job)."""

    app_id: str
    name: str
    am_resource: ResourceVector
    #: ``runner(am_context)`` -> generator; the ApplicationMaster main.
    runner: Callable[[Any], Any]
    submit_time: float = 0.0
    #: Stable FIFO tie-break among applications submitted at the *same*
    #: simulated instant. Two submitters resumed by same-timestamp kernel
    #: events reach :meth:`ResourceManager.submit_application` in dispatch
    #: order, which is not a property figures may depend on; a caller that
    #: knows the intended order (the serving admission controller's
    #: dispatch ticket) passes it here. ``None`` lets the RM fall back to
    #: its own submission sequence. Assigned once; AM restarts keep it.
    fifo_key: Optional[int] = None
    #: When the app (re-)entered the AM allocation queue; with ``fifo_key``
    #: this forms the queue's ordering key. Maintained by the RM.
    queue_time: float = 0.0
    #: When the AM actually started (0.0 until launch). ``launch_time -
    #: submit_time`` is the allocation wait; size-based schedulers use
    #: ``finish - launch_time`` as the job's load-independent service time.
    launch_time: float = 0.0
    am_container: Optional[Container] = None
    #: Fires when the AM starts executing (after launch), value = node_id.
    am_started: Optional["Event"] = None
    #: Fires when the application completes, value = the AM's result.
    finished: Optional["Event"] = None
    killed: bool = False
    #: Completed-task history surviving AM crashes (work-preserving recovery,
    #: the JobHistory event log a second MRAppMaster attempt replays).
    #: Maps task index -> the completed attempt's TaskRecord.
    recovery_maps: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"<Application {self.app_id} {self.name!r}>"
