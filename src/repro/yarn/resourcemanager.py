"""ResourceManager: application lifecycle, allocation plumbing, AM context.

The RM is the hub the paper's Figures 2/3 revolve around:

* stock path — AM asks are queued at CONTAINER_STATUS_UPDATE and served only
  when some NM heartbeat (NODE_STATUS_UPDATE) reaches the scheduler; the AM
  sees the grants on *its* next heartbeat (>= 2 heartbeats of latency);
* D+ path — a scheduler with ``responds_immediately = True`` allocates from
  the RM's live ClusterResource snapshot inside the same allocate() RPC.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Any, Generator, Optional

from ..cluster.resources import ResourceVector
from ..simulation.errors import Interrupt
from ..simulation.monitor import EventLog
from .heartbeat import HeartbeatWheel
from .records import Application, Container, ContainerRequest, IdAllocator, NodeState
from .scheduler import SchedulerBase

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.topology import Topology
    from ..config import HadoopConfig
    from ..simulation.core import Environment
    from .nodemanager import NodeManager


class ResourceManager:
    def __init__(self, env: "Environment", topology: "Topology", scheduler: SchedulerBase,
                 conf: "HadoopConfig", log: Optional[EventLog] = None) -> None:
        self.env = env
        self.topology = topology
        self.scheduler = scheduler
        self.conf = conf
        self.log = log if log is not None else EventLog()
        self.ids = IdAllocator()
        #: One aggregated heartbeat timer for every NM of this RM (replaces
        #: the historical per-node heartbeat processes). ``None`` only when
        #: heartbeats are configured off.
        self.heartbeat_wheel: Optional[HeartbeatWheel] = (
            HeartbeatWheel(env, conf.nm_heartbeat_s, self.node_heartbeat,
                           quantum=conf.nm_heartbeat_quantum_s)
            if conf.nm_heartbeat_s > 0 else None)
        self.nodes: dict[str, NodeState] = {}
        #: Cluster-wide totals, maintained incrementally (node admission and
        #: a per-NodeState usage watcher) so ``total_capability`` and
        #: ``total_used`` are O(1) — they sit on the heartbeat hot path and
        #: re-summing 10k nodes per beat dominated large-cluster runs.
        self._total_capability = ResourceVector.zero()
        self._total_used_mb = 0
        self._total_used_vcores = 0
        for node in topology.nodes:
            self._admit(node)
        scheduler.bind(self)

        self.node_managers: dict[str, "NodeManager"] = {}
        self.apps: dict[str, Application] = {}
        self._am_attempts: dict[str, int] = {}
        #: Containers granted by the scheduler but not yet fetched by the AM.
        self._ready: dict[str, list[Container]] = {}
        #: Applications whose AM container is not allocated yet. Served in
        #: (queue_time, fifo_key) order — FIFO by *intent*, not by which
        #: same-instant submitter's kernel event happened to run first.
        self._am_queue: list[Application] = []
        #: Fallback fifo_key source for apps submitted without one.
        self._submit_seq = count()
        self._am_processes: dict[str, Any] = {}
        #: Callbacks fired on node_lost(node_id) — e.g. the MRapid submission
        #: framework killing pooled-AM jobs whose slave died with the node.
        self.node_lost_listeners: list[Any] = []
        #: AM admission control (maximum-am-resource-percent): memory held
        #: by RM-allocated AM containers, and which container ids are AMs.
        self.am_memory_used_mb: int = 0
        self._am_container_ids: set[int] = set()
        #: One-shot figure runs keep every Application for post-run
        #: inspection. The heavy-traffic replay driver flips this off so
        #: terminal apps are forgotten immediately (bounded RSS over
        #: thousands of jobs — including speculation losers, whose app ids
        #: the driver never sees).
        self.retain_finished_apps: bool = True

    # -- wiring ---------------------------------------------------------------
    def next_app_id(self, prefix: str = "app") -> str:
        return self.ids.next_app_id(prefix)

    def next_container_id(self) -> int:
        return self.ids.next_container_id()

    def register_node_manager(self, nm: "NodeManager") -> None:
        self.node_managers[nm.node_id] = nm

    def add_node(self, node) -> None:
        """Admit a node provisioned after RM construction (elastic scale-up)."""
        if node.node_id in self.nodes:
            raise ValueError(f"node {node.node_id!r} already registered")
        self._admit(node)
        self.log.mark(self.env.now, "node_added", node=node.node_id)

    def _admit(self, node) -> NodeState:
        advertised = ResourceVector(
            memory_mb=node.capability.memory_mb,
            vcores=self.conf.effective_vcores(node.capability.vcores),
        )
        state = NodeState(node.node_id, advertised, watcher=self._on_node_usage)
        self.nodes[node.node_id] = state
        self._total_capability = self._total_capability + advertised
        return state

    def _on_node_usage(self, delta_memory_mb: int, delta_vcores: int) -> None:
        self._total_used_mb += delta_memory_mb
        self._total_used_vcores += delta_vcores

    def remove_node(self, node_id: str) -> None:
        """Decommission a node: forget its state entirely.

        Unlike :meth:`node_lost` (which keeps the dead NodeState around for
        a possible rejoin), removal is permanent — the id must never be
        reused. Any straggler ``container_finished`` for the node becomes a
        no-op, so the watcher is detached to keep the O(1) totals exact.
        """
        state = self.nodes.pop(node_id, None)
        if state is None:
            raise KeyError(f"unknown node {node_id!r}")
        state.reset_used()  # drain its contribution from the usage totals
        state.watcher = None
        self._total_capability = self._total_capability - state.capability
        if self.heartbeat_wheel is not None:
            self.heartbeat_wheel.unregister(node_id)
        self.node_managers.pop(node_id, None)
        self.log.mark(self.env.now, "node_removed", node=node_id)

    def node_state(self, node_id: str) -> NodeState:
        return self.nodes[node_id]

    def total_capability(self) -> ResourceVector:
        return self._total_capability

    def total_used(self) -> ResourceVector:
        return ResourceVector(self._total_used_mb, self._total_used_vcores)

    # -- application lifecycle ----------------------------------------------------
    def submit_application(self, app: Application) -> Application:
        """Queue ``app`` for AM allocation (stock Figure 1 steps 2-3)."""
        if app.app_id in self.apps:
            raise ValueError(f"duplicate application {app.app_id}")
        app.submit_time = self.env.now
        if app.fifo_key is None:
            app.fifo_key = next(self._submit_seq)
        app.queue_time = self.env.now
        app.am_started = self.env.event()
        app.finished = self.env.event()
        self.apps[app.app_id] = app
        self._ready[app.app_id] = []
        self._am_attempts[app.app_id] = 1
        self._am_queue.append(app)
        self.log.mark(self.env.now, "app_submitted", app_id=app.app_id)
        return app

    def run_am_directly(self, app: Application, container: Container,
                        launch_delay: Optional[float] = None) -> None:
        """Start an AM in an already-granted container (AM-pool path)."""
        if app.app_id not in self.apps:
            app.submit_time = self.env.now
            app.am_started = self.env.event()
            app.finished = self.env.event()
            self.apps[app.app_id] = app
            self._ready[app.app_id] = []
        app.am_container = container
        self._launch_am(app, launch_delay=launch_delay)

    def application_finished(self, app: Application, result: Any) -> None:
        self.scheduler.on_app_finished(app, result)
        self.scheduler.remove_app(app.app_id)
        self._ready.pop(app.app_id, None)
        if app.finished is not None and not app.finished.triggered:
            app.finished.succeed(result)
        self.log.mark(self.env.now, "app_finished", app_id=app.app_id)
        if not self.retain_finished_apps:
            self.forget_application(app.app_id)

    def kill_application(self, app: Application, cause: Any = "killed") -> None:
        """Terminate an application: AM process interrupted, asks dropped."""
        if app.killed or (app.finished is not None and app.finished.triggered):
            return
        app.killed = True
        self.scheduler.remove_app(app.app_id)
        self._ready.pop(app.app_id, None)
        self._am_queue = [a for a in self._am_queue if a.app_id != app.app_id]
        proc = self._am_processes.get(app.app_id)
        if proc is not None and proc.is_alive:
            proc.defuse()
            proc.interrupt(cause)
        if app.finished is not None and not app.finished.triggered:
            app.finished.fail(JobKilled(app.app_id, cause))
            app.finished.defuse()
        self.log.mark(self.env.now, "app_killed", app_id=app.app_id)
        if not self.retain_finished_apps:
            self.forget_application(app.app_id)

    # -- heartbeat entry points ------------------------------------------------------
    def node_heartbeat(self, node_id: str) -> None:
        """NODE_STATUS_UPDATE: serve queued AMs first, then task asks."""
        node = self.nodes[node_id]
        node.last_heartbeat = self.env.now
        if self.env.tracer is not None:
            self.env.tracer.metrics.incr("rm:node_heartbeats")

        # AM allocation takes precedence (YARN allocates AMs like any other
        # container but our FIFO keeps it simple and matches short-job runs).
        # The resource calculator matches the installed scheduler's (stock
        # Hadoop 2.2 = memory-only).
        memory_only = getattr(self.scheduler, "memory_only", False)
        am_limit_mb = self.conf.am_resource_fraction * self.total_capability().memory_mb
        # (queue_time, fifo_key) is the queue's *intended* FIFO order; the
        # append order of _am_queue is whatever same-instant kernel tie-break
        # the submitters happened to resume in, which observable figures
        # must not depend on (the race sanitizer permutes it).
        fifo = sorted(self._am_queue,
                      key=lambda a: (a.queue_time, a.fifo_key))
        for app in self.scheduler.am_queue_order(fifo):
            if self.am_memory_used_mb + app.am_resource.memory_mb > am_limit_mb + 1e-9:
                # maximum-am-resource-percent reached: the head-of-line app
                # (in scheduler order) blocks admission, like the real
                # CapacityScheduler's AM-limit check.
                break
            if node.can_fit(app.am_resource, memory_only=memory_only):
                container = Container(self.next_container_id(), node_id, app.am_resource, app.app_id)
                node.allocate(app.am_resource, memory_only=memory_only)
                self.am_memory_used_mb += app.am_resource.memory_mb
                self._am_container_ids.add(container.container_id)
                app.am_container = container
                self._am_queue.remove(app)
                self._launch_am(app)

        for app_id, container in self.scheduler.on_node_heartbeat(node):
            if app_id in self._ready:
                self._ready[app_id].append(container)

    def allocate(self, app_id: str, asks: list[ContainerRequest]) -> list[Container]:
        """AM heartbeat: register asks, collect everything granted so far."""
        if app_id not in self.apps:
            raise KeyError(f"unknown application {app_id}")
        grants = self.scheduler.on_allocate_request(app_id, asks)
        ready = self._ready.get(app_id, [])
        if ready:
            self._ready[app_id] = []
        granted = ready + grants
        if self.env.tracer is not None:
            self.env.tracer.metrics.incr("rm:allocate_calls")
            if granted:
                self.env.tracer.metrics.incr("rm:containers_granted",
                                             len(granted))
        return granted

    def node_lost(self, node_id: str) -> None:
        """Mark a NodeManager dead: nothing further is scheduled there."""
        node = self.nodes.get(node_id)
        if node is not None:
            node.alive = False
        self.log.mark(self.env.now, "node_lost", node=node_id)
        for listener in list(self.node_lost_listeners):
            listener(node_id)

    def node_rejoined(self, node_id: str) -> None:
        """A restarted NodeManager re-registered: schedulable again, empty.

        Accounting resets to zero — every container the node hosted died
        with it and was released through ``container_finished`` (or by the
        framework's node-loss handler for pooled AMs).
        """
        node = self.nodes.get(node_id)
        if node is not None:
            node.alive = True
            node.reset_used()
        self.log.mark(self.env.now, "node_rejoined", node=node_id)

    def forget_application(self, app_id: str) -> None:
        """Drop a *finished* application's bookkeeping.

        The RM keeps every Application record for post-run inspection,
        which is fine for one-shot figures but unbounded on a long-lived
        cluster replaying thousands of jobs. The replay driver calls this
        after it has extracted a job's result; forgetting a live app is an
        error.
        """
        app = self.apps.get(app_id)
        if app is None:
            return
        if not app.killed and (app.finished is None or not app.finished.triggered):
            raise ValueError(f"cannot forget live application {app_id}")
        self.apps.pop(app_id, None)
        self._am_attempts.pop(app_id, None)
        self._am_processes.pop(app_id, None)
        self._ready.pop(app_id, None)

    # -- container accounting ----------------------------------------------------------
    def container_finished(self, container: Container) -> None:
        node = self.nodes.get(container.node_id)
        if node is not None:
            node.release(container.resource)
        if container.container_id in self._am_container_ids:
            self._am_container_ids.discard(container.container_id)
            self.am_memory_used_mb -= container.resource.memory_mb
        self.scheduler.on_container_released(container)

    # -- internals -----------------------------------------------------------------------
    def _handle_am_failure(self, app: Application, exc: BaseException) -> None:
        """An AM attempt died. Either relaunch it or fail the application."""
        self.scheduler.remove_app(app.app_id)
        self._ready[app.app_id] = []
        attempt = self._am_attempts.get(app.app_id, 1)
        retriable = (
            not app.killed
            and isinstance(exc, Interrupt)  # AM's node/container died under it
            and attempt < self.conf.am_max_attempts
        )
        if retriable:
            # yarn.resourcemanager.am.max-attempts: relaunch the AM.
            # The application object (and its recovery_maps history)
            # survives, so the next attempt can replay completed
            # tasks when am_work_preserving_recovery is on.
            self._am_attempts[app.app_id] = attempt + 1
            app.am_container = None
            # Re-queue at *now* (no queue jumping over apps submitted since
            # the first attempt); same-instant restarts — a node death kills
            # several AMs at once — fall back on the apps' original
            # submission order via the retained fifo_key.
            app.queue_time = self.env.now
            self._am_queue.append(app)
            self.log.mark(self.env.now, "am_restarted",
                          app_id=app.app_id, attempt=attempt + 1)
            return
        # Terminal: surface the failure through app.finished so the
        # client sees it; don't let the AM process itself become an
        # unhandled event failure.
        self._ready.pop(app.app_id, None)
        if app.finished is not None and not app.finished.triggered:
            app.finished.fail(exc)
            self.log.mark(self.env.now, "app_failed", app_id=app.app_id)
        if not self.retain_finished_apps:
            self.forget_application(app.app_id)

    def _launch_am(self, app: Application, launch_delay: Optional[float] = None) -> None:
        nm = self.node_managers[app.am_container.node_id]
        app.launch_time = self.env.now
        ctx = AMContext(self, app, app.am_container)

        def am_body() -> Generator:
            if app.am_started is not None and not app.am_started.triggered:
                app.am_started.succeed(app.am_container.node_id)
            try:
                result = yield from app.runner(ctx)
            except Exception as exc:
                self._handle_am_failure(app, exc)
                return None
            self.application_finished(app, result)
            return result

        tracer = self.env.tracer
        if tracer is not None:
            # Retrospective: how long the AM container sat in allocation.
            from ..observe.tracer import CLUSTER
            tracer.complete("am-alloc-wait", "alloc", CLUSTER,
                            f"am-{app.app_id}", app.submit_time,
                            placed_on=app.am_container.node_id)
        if self.env.telemetry is not None:
            self.env.telemetry.am_alloc_wait.observe(
                self.env.now - app.submit_time)
        proc = nm.launch(app.am_container, am_body(), name=f"am-{app.app_id}",
                         launch_delay=launch_delay)
        self._am_processes[app.app_id] = proc

        def am_watch() -> Generator:
            # A kill that lands during the JVM launch delay never reaches
            # am_body's handler (the payload generator hasn't started), so
            # watch the container process itself and route the failure
            # through the same retry-or-fail path.
            try:
                yield proc
            except BaseException as exc:
                self._handle_am_failure(app, exc)

        self.env.process(am_watch(), name=f"am-watch-{app.app_id}")
        self.log.mark(self.env.now, "am_allocated", app_id=app.app_id,
                      node=app.am_container.node_id)


class JobKilled(Exception):
    """Delivered through ``Application.finished`` when a job is killed."""

    def __init__(self, app_id: str, cause: Any = None) -> None:
        super().__init__(f"{app_id} killed ({cause})")
        self.app_id = app_id
        self.cause = cause


class AMContext:
    """Services an ApplicationMaster uses to talk to YARN.

    One ``allocate()`` call == one AM->RM heartbeat exchange (two RPC
    half-trips of latency). The AM implementations loop::

        grants = yield from ctx.allocate(asks)
        ...
        yield from ctx.wait_heartbeat()
    """

    def __init__(self, rm: ResourceManager, app: Application, container: Container) -> None:
        self.rm = rm
        self.env = rm.env
        self.app = app
        self.container = container
        self.node_id = container.node_id
        self.conf = rm.conf
        self.topology = rm.topology

    def allocate(self, asks: list[ContainerRequest]) -> Generator:
        start = self.env.now
        yield self.env.timeout(self.conf.rpc_latency_s)
        grants = self.rm.allocate(self.app.app_id, asks)
        yield self.env.timeout(self.conf.rpc_latency_s)
        if self.env.tracer is not None:
            self.env.tracer.complete(
                "allocate-rpc", "alloc", self.node_id,
                f"am-{self.app.app_id}", start,
                asks=len(asks), grants=len(grants))
        return grants

    def wait_heartbeat(self) -> Generator:
        start = self.env.now
        yield self.env.timeout(self.conf.am_heartbeat_s)
        if self.env.tracer is not None:
            self.env.tracer.complete("heartbeat-wait", "heartbeat",
                                     self.node_id, f"am-{self.app.app_id}",
                                     start)

    def start_container(self, container: Container, runnable: Generator,
                        name: str = "task", launch_delay: Optional[float] = None):
        """startContainers RPC to the NM; returns the container process."""
        nm = self.rm.node_managers[container.node_id]
        return nm.launch(container, runnable, name=name, launch_delay=launch_delay)

    def release(self, container: Container) -> None:
        self.rm.container_finished(container)

    # -- work-preserving recovery (yarn.app.mapreduce.am.job.recovery) -------
    def record_completed_map(self, idx: int, record: Any) -> None:
        """Journal a completed map so a second AM attempt can replay it."""
        self.app.recovery_maps[idx] = record

    def recovered_maps(self) -> dict:
        """Completed-map history journaled by previous AM attempts."""
        return dict(self.app.recovery_maps)

    def node(self, node_id: str):
        return self.rm.topology.node(node_id)

    @property
    def local_node(self):
        return self.rm.topology.node(self.node_id)
