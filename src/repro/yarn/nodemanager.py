"""NodeManager: heartbeats to the RM and launches containers (JVMs)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..simulation.errors import Interrupt
from .records import Container

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node
    from ..simulation.core import Environment
    from ..simulation.events import Process
    from .resourcemanager import ResourceManager


class NodeManager:
    """Per-node daemon.

    * Heartbeats every ``nm_heartbeat_s`` (phase-offset per node, as real NMs
      start at arbitrary times) — the stock scheduler only hands out
      containers inside these heartbeats. The beats themselves come from the
      RM's shared :class:`~repro.yarn.heartbeat.HeartbeatWheel`; the NM only
      registers/suspends/resumes its membership, and its phase (the wheel
      *anchor*) survives crash/rejoin and drain/undrain cycles.
    * ``launch(container, runnable)`` models container start-up (JVM spawn +
      localization, ``container_launch_s``) before running the payload.
    """

    def __init__(self, env: "Environment", node: "Node", rm: "ResourceManager",
                 heartbeat_offset: float = 0.0) -> None:
        self.env = env
        self.node = node
        self.rm = rm
        self.heartbeat_offset = heartbeat_offset
        self.failed = False
        self.failed_at: float = float("inf")
        #: Administratively removed from service (autoscaler scale-down).
        #: Unlike ``failed`` the machine is healthy — it just stops
        #: heartbeating so the RM never schedules on it, and it rejoins
        #: instantly on :meth:`undrain`.
        self.drained = False
        self.running: dict[int, "Process"] = {}
        #: Fault-injection hook: ``decide(container) -> Optional[float]``
        #: returns seconds-until-crash for a flaky container, or None.
        self._flaky: Optional[Callable[[Container], Optional[float]]] = None
        if rm.heartbeat_wheel is not None:
            rm.heartbeat_wheel.register(node.node_id, heartbeat_offset)

    @property
    def node_id(self) -> str:
        return self.node.node_id

    def launch(self, container: Container, runnable: Generator,
               name: str = "container", launch_delay: Optional[float] = None,
               on_exit: Optional[Callable[[Container, Any], None]] = None) -> "Process":
        """Start ``runnable`` inside ``container`` after JVM launch delay.

        Returns the container process; its value is the runnable's return
        value. The container's resources are released to the RM when the
        payload exits (normally, by error, or killed).
        """
        delay = self.rm.conf.container_launch_s if launch_delay is None else launch_delay

        def body() -> Generator:
            try:
                if delay > 0:
                    start = self.env.now
                    yield self.env.timeout(delay)
                    if self.env.tracer is not None:
                        self.env.tracer.complete(
                            "container-launch", "launch", self.node_id, name,
                            start, container_id=container.container_id)
                result = yield from runnable
                return result
            finally:
                self.running.pop(container.container_id, None)
                self.rm.container_finished(container)
                if on_exit is not None:
                    on_exit(container, None)

        proc = self.env.process(body(), name=f"{name}@{self.node_id}")
        self.running[container.container_id] = proc
        if self._flaky is not None:
            crash_after = self._flaky(container)
            if crash_after is not None:
                self.env.process(self._sabotage(proc, crash_after),
                                 name=f"flaky-{name}@{self.node_id}")
        return proc

    def _sabotage(self, proc: "Process", delay: float) -> Generator:
        """Kill a flaky container's process after ``delay`` seconds.

        Delivered as an Interrupt, the same signal a node death sends, so
        AMs reuse their attempt-retry (and AM-restart) machinery unchanged.
        """
        yield self.env.timeout(delay)
        if proc.is_alive:
            proc.defuse()
            proc.interrupt("flaky container")

    def set_flakiness(self, decide: Optional[Callable[[Container], Optional[float]]]) -> None:
        """Install (or clear, with None) the per-container flakiness hook."""
        self._flaky = decide

    def kill_container(self, container: Container, cause: Any = "killed") -> None:
        proc = self.running.get(container.container_id)
        if proc is not None and proc.is_alive:
            proc.interrupt(cause)

    def fail(self, cause: Any = "node failure") -> None:
        """The machine dies: heartbeats stop, every running container is
        killed, and the RM marks the node lost (no further allocations).

        Containers fail with :class:`~repro.simulation.errors.Interrupt`
        carrying ``cause``; AMs observe the failed task attempts and retry
        on surviving nodes.
        """
        if self.failed:
            return
        self.failed = True
        self.failed_at = self.env.now
        if self.rm.heartbeat_wheel is not None:
            self.rm.heartbeat_wheel.suspend(self.node_id)
        for proc in list(self.running.values()):
            if proc.is_alive:
                proc.defuse()
                proc.interrupt(cause)
        self.rm.node_lost(self.node_id)

    def restart(self) -> None:
        """Bring a failed NodeManager back (transient outage recovered).

        Heartbeats resume on the node's *original* phase grid (the wheel
        anchor survives the outage — a mass rejoin after churn must not
        synchronize the fleet into a thundering herd) and the RM marks the
        node alive with zeroed accounting — everything that ran here died
        with the failure, so the rejoining node is empty, exactly like a
        real NM restart (containers are not work-preserved across NM death).
        """
        if not self.failed:
            return
        self.failed = False
        self.failed_at = float("inf")
        self.running.clear()
        if self.drained:
            # Recovered hardware stays out of service until undrained.
            return
        if self.rm.heartbeat_wheel is not None:
            self.rm.heartbeat_wheel.resume(self.node_id)
        self.rm.node_rejoined(self.node_id)

    def drain(self) -> None:
        """Take a healthy, idle node out of service (scale-down).

        Heartbeats stop and the RM stops scheduling here; running
        containers (there should be none — callers drain idle nodes) are
        left untouched. The DataNode keeps serving HDFS reads: draining is
        a YARN-capacity decision, not a decommission.
        """
        if self.drained or self.failed:
            return
        self.drained = True
        if self.rm.heartbeat_wheel is not None:
            self.rm.heartbeat_wheel.suspend(self.node_id)
        node = self.rm.nodes.get(self.node_id)
        if node is not None:
            node.alive = False
        self.rm.log.mark(self.env.now, "node_drained", node=self.node_id)

    def undrain(self) -> None:
        """Return a drained node to service (warm scale-up, no delay)."""
        if not self.drained:
            return
        self.drained = False
        if self.failed:
            return  # crashed while parked; restart() will bring it back
        if self.rm.heartbeat_wheel is not None:
            self.rm.heartbeat_wheel.resume(self.node_id)
        self.rm.node_rejoined(self.node_id)
        self.rm.log.mark(self.env.now, "node_undrained", node=self.node_id)
