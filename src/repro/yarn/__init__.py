"""Simulated YARN: ResourceManager, NodeManagers, schedulers, records."""

from .hfsp import HFSPScheduler, SizeStats
from .nodemanager import NodeManager
from .queues import MultiTenantCapacityScheduler, QueueConfig, QueueState
from .records import Application, Container, ContainerRequest, IdAllocator, NodeState
from .resourcemanager import AMContext, JobKilled, ResourceManager
from .scheduler import CapacityScheduler, PendingAsk, SchedulerBase

__all__ = [
    "AMContext",
    "Application",
    "CapacityScheduler",
    "Container",
    "ContainerRequest",
    "HFSPScheduler",
    "IdAllocator",
    "JobKilled",
    "MultiTenantCapacityScheduler",
    "NodeManager",
    "NodeState",
    "PendingAsk",
    "QueueConfig",
    "QueueState",
    "ResourceManager",
    "SchedulerBase",
    "SizeStats",
]
