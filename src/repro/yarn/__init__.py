"""Simulated YARN: ResourceManager, NodeManagers, schedulers, records."""

from .nodemanager import NodeManager
from .records import Application, Container, ContainerRequest, IdAllocator, NodeState
from .resourcemanager import AMContext, JobKilled, ResourceManager
from .scheduler import CapacityScheduler, PendingAsk, SchedulerBase
from .queues import MultiTenantCapacityScheduler, QueueConfig, QueueState

__all__ = [
    "AMContext",
    "Application",
    "CapacityScheduler",
    "Container",
    "ContainerRequest",
    "IdAllocator",
    "JobKilled",
    "MultiTenantCapacityScheduler",
    "NodeManager",
    "NodeState",
    "PendingAsk",
    "QueueConfig",
    "QueueState",
    "ResourceManager",
    "SchedulerBase",
]
