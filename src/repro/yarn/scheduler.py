"""Scheduler interface and the stock (greedy, heartbeat-driven) scheduler.

The stock :class:`CapacityScheduler` reproduces the behaviour the paper's
§II/§III-A attributes to Hadoop 2.2:

* Container requests are only served when some NodeManager heartbeats
  (NODE_STATUS_UPDATE), never at request time — so an AM waits at least two
  heartbeats end-to-end.
* Assignment is greedy: the heartbeating node is packed with as many queued
  requests as fit, which concentrates a short job's tasks on whichever node
  reported first ("deploys tasks to DataNodes as few as possible").
* Data locality is ignored for these assignments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .records import Container, ContainerRequest, NodeState

if TYPE_CHECKING:  # pragma: no cover
    from .resourcemanager import ResourceManager


class PendingAsk:
    """A queued container request plus the app it belongs to."""

    __slots__ = ("app_id", "request", "enqueued_at")

    def __init__(self, app_id: str, request: ContainerRequest, enqueued_at: float) -> None:
        self.app_id = app_id
        self.request = request
        self.enqueued_at = enqueued_at


class SchedulerBase:
    """Common queue plumbing; subclasses decide *when* and *where*."""

    #: Whether :meth:`on_allocate_request` may hand out containers directly
    #: (the D+ same-heartbeat path). The RM uses this to decide whether an
    #: allocate() call can return grants synchronously.
    responds_immediately = False

    def __init__(self) -> None:
        self.rm: Optional["ResourceManager"] = None
        self.queue: list[PendingAsk] = []

    def bind(self, rm: "ResourceManager") -> None:
        self.rm = rm

    # -- entry points -------------------------------------------------------
    def on_allocate_request(self, app_id: str, asks: list[ContainerRequest]) -> list[Container]:
        """AM heartbeat carrying new asks. Returns same-heartbeat grants."""
        now = self.rm.env.now
        for ask in asks:
            self.queue.append(PendingAsk(app_id, ask, now))
        return []

    def on_node_heartbeat(self, node: NodeState) -> list[tuple[str, Container]]:
        """NM heartbeat; returns (app_id, container) grants made now."""
        return []

    def am_queue_order(self, apps: list) -> list:
        """Order in which queued AMs are served on a node heartbeat.

        Stock YARN allocates AMs first-come-first-served; size-based
        schedulers (HFSP) override this, since under short-job-heavy
        traffic most jobs are uberized and AM allocation order *is* the
        job order.
        """
        return apps

    def remove_app(self, app_id: str) -> None:
        """Drop queued asks of a finished/killed application."""
        self.queue = [p for p in self.queue if p.app_id != app_id]

    def on_container_released(self, container: Container) -> None:
        """Hook: a granted container's resources returned (queue accounting)."""

    def on_app_finished(self, app, result=None) -> None:
        """Hook: an application completed (schedulers learning job sizes).

        ``result`` is the application's terminal value when the RM has one
        (a :class:`~repro.mapreduce.spec.JobResult` for MapReduce apps) —
        learning schedulers must inspect it (and ``app.killed``) so that
        killed or AM-failed runs never pollute size estimates.
        """

    # -- helpers ----------------------------------------------------------------
    def _grant(self, pending: PendingAsk, node: NodeState,
               memory_only: bool = False) -> Container:
        container = Container(
            container_id=self.rm.next_container_id(),
            node_id=node.node_id,
            resource=pending.request.resource,
            app_id=pending.app_id,
        )
        node.allocate(pending.request.resource, memory_only=memory_only)
        tracer = self.rm.env.tracer
        if tracer is not None:
            tracer.metrics.incr("scheduler:grants")
            tracer.metrics.observe("scheduler:grant_queue_delay_s",
                                   self.rm.env.now - pending.enqueued_at)
        telemetry = self.rm.env.telemetry
        if telemetry is not None:
            telemetry.grant_delay.observe(
                self.rm.env.now - pending.enqueued_at)
        return container


class CapacityScheduler(SchedulerBase):
    """Stock greedy scheduler: packs the heartbeating node, FIFO order.

    ``memory_only=True`` reproduces Hadoop 2.2's DefaultResourceCalculator:
    containers are packed by memory alone, oversubscribing CPU on the first
    node to heartbeat — the paper's "some DataNodes may be squeezed with
    many containers, but others could be idle".
    """

    responds_immediately = False

    def __init__(self, memory_only: bool = True) -> None:
        super().__init__()
        self.memory_only = memory_only

    def on_node_heartbeat(self, node: NodeState) -> list[tuple[str, Container]]:
        # Single pass over the FIFO queue. Equivalent to the classic
        # grant-then-rescan-from-head loop: a grant only *shrinks* the
        # node's availability, so an ask that was skipped earlier in the
        # pass can never fit on a rescan — but single-pass is O(queue)
        # instead of O(grants x queue).
        grants: list[tuple[str, Container]] = []
        remaining: list[PendingAsk] = []
        for pending in self.queue:
            if (node.node_id not in pending.request.blacklist
                    and node.can_fit(pending.request.resource,
                                     memory_only=self.memory_only)):
                container = self._grant(pending, node, memory_only=self.memory_only)
                grants.append((pending.app_id, container))
            else:
                remaining.append(pending)
        self.queue = remaining
        return grants
