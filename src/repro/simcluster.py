"""SimCluster: one-stop construction of a fully wired simulated testbed.

Builds the environment, physical nodes, topology, network, HDFS, RM and NMs
from a :class:`~repro.config.ClusterSpec` + :class:`~repro.config.HadoopConfig`,
with any scheduler. Everything downstream (MapReduce AMs, MRapid, the
experiment harness) receives a ``SimCluster`` and never wires plumbing again.
"""

from __future__ import annotations

from typing import Optional

from .cluster.network import ClusterNetwork
from .cluster.node import Node
from .cluster.topology import Topology
from .config import ClusterSpec, HadoopConfig
from .hdfs.client import HdfsClient
from .hdfs.datanode import DataNodeDaemon, ReplicationManager
from .hdfs.namenode import NameNode
from .simulation.core import Environment
from .simulation.monitor import EventLog
from .yarn.nodemanager import NodeManager
from .yarn.resourcemanager import ResourceManager
from .yarn.scheduler import CapacityScheduler, SchedulerBase


class SimCluster:
    """A running simulated Hadoop cluster (pre-job-submission state)."""

    def __init__(self, spec: ClusterSpec, conf: Optional[HadoopConfig] = None,
                 scheduler: Optional[SchedulerBase] = None, seed: int = 7) -> None:
        self.spec = spec
        self.conf = conf if conf is not None else HadoopConfig()
        self.env = Environment()
        self.log = EventLog()

        inst = spec.instance
        self.datanodes: list[Node] = [
            Node(
                self.env,
                f"dn{i}",
                rack=f"rack{i % spec.racks}",
                cores=inst.cores,
                memory_mb=inst.memory_mb,
                disk_read_mb_s=inst.disk_read_mb_s,
                disk_write_mb_s=inst.disk_write_mb_s,
                disk_seek_penalty=inst.disk_seek_penalty,
            )
            for i in range(spec.num_datanodes)
        ]
        self.topology = Topology(self.datanodes)
        self.network = ClusterNetwork(self.env, self.datanodes,
                                      bandwidth_mb_s=inst.network_mb_s)
        self.namenode = NameNode(self.topology, block_size_mb=self.conf.block_size_mb,
                                 replication=min(self.conf.replication, spec.num_datanodes),
                                 seed=seed)
        self.hdfs = HdfsClient(self.env, self.namenode, self.network, self.topology)

        self.datanode_daemons: dict[str, DataNodeDaemon] = {
            node.node_id: DataNodeDaemon(self.env, node.node_id, self.namenode,
                                         report_interval_s=3.0)
            for node in self.datanodes
        }
        self.replication_manager = ReplicationManager(
            self.env, self.namenode, self.network, self.topology)

        self.scheduler = scheduler if scheduler is not None else CapacityScheduler()
        self.rm = ResourceManager(self.env, self.topology, self.scheduler, self.conf,
                                  log=self.log)
        #: Monotonic id source for nodes provisioned after construction.
        #: Never decremented: decommissioned ids must not come back, and
        #: deriving fresh ids from ``len(self.datanodes)`` would collide as
        #: soon as a node has been removed.
        self._node_seq = spec.num_datanodes
        self.node_managers: list[NodeManager] = []
        for i, node in enumerate(self.datanodes):
            # Deterministic but spread heartbeat phases, like real daemons
            # that started at arbitrary times.
            offset = (i * 0.317) % self.conf.nm_heartbeat_s if self.conf.nm_heartbeat_s else 0.0
            nm = NodeManager(self.env, node, self.rm, heartbeat_offset=offset)
            self.rm.register_node_manager(nm)
            self.node_managers.append(nm)

    def add_node(self) -> NodeManager:
        """Provision one more worker (elastic scale-up, e.g. the autoscaler).

        The new node gets the next ``dn{i}`` id with the same deterministic
        rack assignment and heartbeat phase the constructor would have given
        it, joins the topology/network/HDFS/RM, and is schedulable from its
        first heartbeat. Node ids are never reused — the id comes from a
        monotonic counter, so it stays fresh even after :meth:`remove_node`
        has decommissioned workers (``len(self.datanodes)`` would collide).
        """
        inst = self.spec.instance
        i = self._node_seq
        self._node_seq += 1
        node = Node(
            self.env,
            f"dn{i}",
            rack=f"rack{i % self.spec.racks}",
            cores=inst.cores,
            memory_mb=inst.memory_mb,
            disk_read_mb_s=inst.disk_read_mb_s,
            disk_write_mb_s=inst.disk_write_mb_s,
            disk_seek_penalty=inst.disk_seek_penalty,
        )
        self.datanodes.append(node)
        self.topology.add(node)
        self.network.add_node(node)
        self.datanode_daemons[node.node_id] = DataNodeDaemon(
            self.env, node.node_id, self.namenode, report_interval_s=3.0)
        self.rm.add_node(node)
        offset = (i * 0.317) % self.conf.nm_heartbeat_s if self.conf.nm_heartbeat_s else 0.0
        nm = NodeManager(self.env, node, self.rm, heartbeat_offset=offset)
        self.rm.register_node_manager(nm)
        self.node_managers.append(nm)
        return nm

    def remove_node(self, node_id: str):
        """Decommission a worker permanently (scale-down beyond drain).

        The node leaves the RM (state forgotten, heartbeats unregistered),
        the topology and the HDFS membership; its replicas are written off
        and re-replicated onto the survivors. Its id is never reused —
        :meth:`add_node` draws from a monotonic counter. The node must be
        idle (no running containers); drain it first under load. Network
        links are left in place: they are keyed by id and unreachable once
        the node is out of the topology.

        Returns the HDFS re-replication process.
        """
        nm = self.rm.node_managers[node_id]
        if nm.running:
            raise ValueError(
                f"cannot decommission {node_id}: containers still running")
        node = self.topology.node(node_id)
        self.rm.remove_node(node_id)
        self.topology.remove(node_id)
        self.datanodes.remove(node)
        self.node_managers = [m for m in self.node_managers
                              if m.node_id != node_id]
        daemon = self.datanode_daemons.pop(node_id)
        daemon.fail()
        return self.replication_manager.handle_datanode_loss(node_id)

    # -- convenience -----------------------------------------------------------
    def load_input_files(self, prefix: str, num_files: int, file_size_mb: float,
                         spread_writers: bool = True) -> list[str]:
        """Pre-populate HDFS with input files (no simulated ingest time).

        ``spread_writers`` rotates the primary replica across DataNodes, as
        data loaded by parallel ``hdfs put`` / TeraGen ends up spread out.
        Returns the created paths.
        """
        paths = []
        node_ids = self.topology.node_ids
        for i in range(num_files):
            path = f"{prefix}/part-{i:05d}"
            writer = node_ids[i % len(node_ids)] if spread_writers else None
            self.namenode.create_file(path, file_size_mb, writer_node=writer)
            paths.append(path)
        return paths

    def ingest_input_files(self, prefix: str, num_files: int, file_size_mb: float,
                           gateway_node: str = "dn0"):
        """*Timed* input ingest: write files through the HDFS data path.

        Unlike :meth:`load_input_files` (instant metadata, for experiments
        whose clock starts at job submission), this pays the real pipelined
        replication traffic of an ``hdfs put`` from ``gateway_node``.
        Returns a process whose value is the list of created paths.
        """

        def body():
            paths = []
            for i in range(num_files):
                path = f"{prefix}/part-{i:05d}"
                yield from self.hdfs.write_file(path, file_size_mb, gateway_node)
                paths.append(path)
            return paths

        return self.env.process(body(), name=f"ingest-{prefix}")

    def fail_node(self, node_id: str):
        """Whole-machine failure: YARN containers die, heartbeats stop, the
        DataNode's replicas are lost, in-flight disk and network transfers
        served by the machine are torn down (readers fail over to surviving
        replicas; shuffle fetchers report fetch failures), and HDFS
        re-replication kicks off.

        Returns the re-replication process (completes when replication
        factors are restored on the survivors).
        """
        self.rm.node_managers[node_id].fail()
        self.datanode_daemons[node_id].fail()
        # Prune the replica maps first (handle_datanode_loss does so
        # synchronously before yielding), then deliver the flow failures, so
        # FlowKilled handlers already see the post-failure replica lists.
        rerepl = self.replication_manager.handle_datanode_loss(node_id)
        self.topology.node(node_id).disk.fail_active()
        self.network.fail_node_flows(node_id)
        return rerepl

    def restart_node(self, node_id: str) -> None:
        """Bring a failed machine back: the NM re-registers empty and the
        DataNode resumes (its block inventory was already written off by the
        NameNode on failure, so the node rejoins with no replicas — real
        HDFS would eventually delete the stale block files anyway).
        """
        self.rm.node_managers[node_id].restart()
        self.datanode_daemons[node_id].restart()
        self.replication_manager.dead_nodes.discard(node_id)

    def run(self, until=None):
        return self.env.run(until=until)
